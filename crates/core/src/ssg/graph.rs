//! The Strict State Graph structure.
//!
//! Nodes are states (object set + marked frame set); a directed edge
//! `(s, s')` records that `s'` was generated from `s`, which implies
//! `IDs' ⊂ IDs` (Property 1). Among the children of any node, no child's
//! object set may contain another child's object set (Property 2) — the
//! [`StateGraph::attach`] operation enforces both properties, rewiring edges
//! exactly as described in Section 4.3.4 of the paper.

use tvq_common::{
    Decoder, Encoder, Error, FrameId, FxHashMap, MarkedFrameSet, ObjectSet, RemapTable, Result,
    SetId, SetInterner,
};

use crate::snapshot;

/// Index of a node inside the graph's slab.
pub(crate) type NodeId = usize;

/// Sentinel for "never visited".
pub(crate) const NEVER: u64 = u64::MAX;

/// A node of the Strict State Graph.
#[derive(Debug)]
pub(crate) struct Node {
    /// Interned handle of the state's object set — the key every hot-path
    /// lookup and comparison uses.
    pub sid: SetId,
    /// The state's object set (resolved once at insertion; an `Arc` clone of
    /// the interned set, kept for subset tests and result reporting).
    pub set: ObjectSet,
    /// The state's marked frame set.
    pub frames: MarkedFrameSet,
    /// Children: states generated from this one (proper subsets).
    pub children: Vec<NodeId>,
    /// Parents: states this one was generated from (proper supersets).
    pub parents: Vec<NodeId>,
    /// Frame id of the last State Traversal that visited this node.
    pub visited: u64,
    /// This node's intersection with the frame of its last visit (valid
    /// while `visited` matches the current frame) — lets the CNPS candidate
    /// pass reuse the traversal's work instead of intersecting again.
    pub last_inter: SetId,
    /// Frame id of the last frame appended to this node's frame set.
    pub touched: u64,
    /// In-window frames whose object set equals this node's object set
    /// (non-empty while the node is a principal state). Ascending; stored
    /// as a deque so window expiry pops the front in O(expired) instead of
    /// re-scanning the whole list every frame.
    pub principal_frames: std::collections::VecDeque<FrameId>,
    /// Whether the node is live (false once removed; slots are reused).
    pub alive: bool,
}

impl Node {
    fn new(sid: SetId, set: ObjectSet) -> Self {
        Node {
            sid,
            set,
            frames: MarkedFrameSet::new(),
            children: Vec::new(),
            parents: Vec::new(),
            visited: NEVER,
            last_inter: SetId::EMPTY,
            touched: NEVER,
            principal_frames: std::collections::VecDeque::new(),
            alive: true,
        }
    }
}

/// Slab-allocated Strict State Graph indexed by interned set handles.
#[derive(Debug, Default)]
pub(crate) struct StateGraph {
    nodes: Vec<Node>,
    free: Vec<NodeId>,
    by_set: FxHashMap<SetId, NodeId>,
    pub edges_added: u64,
    pub edges_removed: u64,
}

impl StateGraph {
    pub fn new() -> Self {
        StateGraph::default()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.by_set.len()
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Split borrow: a mutable reference to `target` alongside a shared
    /// reference to `source`. Lets frame sets merge between two nodes
    /// without cloning either (`target` and `source` must differ).
    pub fn pair_mut(&mut self, target: NodeId, source: NodeId) -> (&mut Node, &Node) {
        debug_assert_ne!(target, source, "pair_mut needs two distinct nodes");
        if target < source {
            let (left, right) = self.nodes.split_at_mut(source);
            (&mut left[target], &right[0])
        } else {
            let (left, right) = self.nodes.split_at_mut(target);
            (&mut right[0], &left[source])
        }
    }

    /// Looks up the live node holding the interned set `sid`.
    pub fn id_of(&self, sid: SetId) -> Option<NodeId> {
        self.by_set.get(&sid).copied()
    }

    /// Inserts a new node for the interned set `sid` (resolved as `set`);
    /// the handle must not already be present.
    pub fn insert(&mut self, sid: SetId, set: ObjectSet) -> NodeId {
        debug_assert!(
            !self.by_set.contains_key(&sid),
            "duplicate node for {set:?}"
        );
        let node = Node::new(sid, set);
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id] = node;
                id
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.by_set.insert(sid, id);
        id
    }

    /// The interned handles of all live nodes — the live list a compaction
    /// epoch preserves.
    pub fn live_sids(&self) -> Vec<SetId> {
        self.by_set.keys().copied().collect()
    }

    /// Re-keys the graph through a compaction epoch's remap table: every
    /// live node's `sid` (and the handle index over them) moves to its new
    /// value. Per-node `last_inter` hints are remapped too — a hint whose
    /// set was retired resets to the empty handle; the hint is only read
    /// within the frame that wrote it, so this is bookkeeping hygiene, not
    /// a behaviour change.
    pub fn remap(&mut self, table: &RemapTable) {
        let mut by_set = FxHashMap::default();
        for (&old_sid, &id) in &self.by_set {
            let node = &mut self.nodes[id];
            node.sid = table
                .remap(old_sid)
                .expect("every live node's set is in the compaction live list");
            node.last_inter = table.remap(node.last_inter).unwrap_or(SetId::EMPTY);
            by_set.insert(node.sid, id);
        }
        self.by_set = by_set;
    }

    /// Identifiers of all live nodes, in ascending slab order.
    ///
    /// Sorted so that bulk operations (the maintainer's periodic sweep)
    /// process nodes in a deterministic order: removal rewires edges, so
    /// iterating in `HashMap` order would make the edge counters — and the
    /// intermediate graph shape — differ between identical runs.
    pub fn live_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.by_set.values().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn add_edge(&mut self, parent: NodeId, child: NodeId) {
        if !self.nodes[parent].children.contains(&child) {
            self.nodes[parent].children.push(child);
            self.nodes[child].parents.push(parent);
            self.edges_added += 1;
        }
    }

    fn remove_edge(&mut self, parent: NodeId, child: NodeId) {
        if let Some(pos) = self.nodes[parent].children.iter().position(|&c| c == child) {
            self.nodes[parent].children.swap_remove(pos);
            self.edges_removed += 1;
        }
        if let Some(pos) = self.nodes[child].parents.iter().position(|&p| p == parent) {
            self.nodes[child].parents.swap_remove(pos);
        }
    }

    /// Proper-subset test on interned handles: distinct handles are distinct
    /// sets, so a word-parallel `a ⊆ b` plus a handle inequality decides
    /// strictness — allocation-free and without touching (or polluting) the
    /// interner's intersection memo.
    fn is_proper_subset(interner: &SetInterner, a: SetId, b: SetId) -> bool {
        a != b && interner.is_subset_of(a, b)
    }

    /// Connects `child` under `parent`, enforcing Properties 1 and 2.
    ///
    /// * If the child's object set is not a proper subset of the parent's,
    ///   the edge is refused (Property 1).
    /// * If an existing child of `parent` contains the new child's set, the
    ///   new child is attached under that child instead (it is the tighter
    ///   parent).
    /// * If the new child's set contains an existing child's set, that edge is
    ///   moved below the new child — the "Modifying Existing Edges" step of
    ///   Section 4.3.4.
    ///
    /// Subset tests run word-parallel over the interner's dense bitmaps, so
    /// repeated attachments of the same state pair cost a few AND words.
    pub fn attach(&mut self, parent: NodeId, child: NodeId, interner: &SetInterner) {
        if parent == child {
            return;
        }
        // Fast path: the edge already exists (states are re-derived from the
        // same parent frame after frame) — skip the sibling scan entirely.
        if self.nodes[child].parents.contains(&parent) {
            return;
        }
        if !Self::is_proper_subset(interner, self.nodes[child].sid, self.nodes[parent].sid) {
            return;
        }
        // Index loop instead of cloning the sibling vector: the only
        // mutation of `parent.children` inside the loop is the
        // `remove_edge` swap_remove at the current index (the recursive
        // `attach` calls only touch the subtrees below `sibling`/`child`),
        // so holding the index steady after a removal visits every sibling
        // exactly once.
        let mut index = 0;
        while index < self.nodes[parent].children.len() {
            let sibling = self.nodes[parent].children[index];
            if sibling == child {
                return;
            }
            if !self.nodes[sibling].alive {
                index += 1;
                continue;
            }
            if Self::is_proper_subset(interner, self.nodes[child].sid, self.nodes[sibling].sid) {
                // A tighter ancestor exists among the siblings; attach below it.
                self.attach(sibling, child, interner);
                return;
            }
            if Self::is_proper_subset(interner, self.nodes[sibling].sid, self.nodes[child].sid) {
                // The new child is a tighter parent for this sibling.
                self.remove_edge(parent, sibling);
                self.attach(child, sibling, interner);
            } else {
                index += 1;
            }
        }
        self.add_edge(parent, child);
    }

    /// Removes a node, reconnecting its parents to its children so that every
    /// descendant stays reachable from the surviving ancestors.
    pub fn remove(&mut self, id: NodeId, interner: &SetInterner) {
        if !self.nodes[id].alive {
            return;
        }
        // Take the edge lists instead of cloning them: the node is being
        // dismantled, so its own vectors can be emptied up front. Each taken
        // edge still exists in the opposite direction; splice those out
        // directly (the counter accounting matches the former
        // `remove_edge(parent, id)` / `remove_edge(id, child)` pair).
        let parents = std::mem::take(&mut self.nodes[id].parents);
        let children = std::mem::take(&mut self.nodes[id].children);
        for &parent in &parents {
            if let Some(pos) = self.nodes[parent].children.iter().position(|&c| c == id) {
                self.nodes[parent].children.swap_remove(pos);
                self.edges_removed += 1;
            }
        }
        for &child in &children {
            if let Some(pos) = self.nodes[child].parents.iter().position(|&p| p == id) {
                self.nodes[child].parents.swap_remove(pos);
            }
            self.edges_removed += 1;
        }
        for &parent in &parents {
            if !self.nodes[parent].alive {
                continue;
            }
            for &child in &children {
                if self.nodes[child].alive {
                    self.attach(parent, child, interner);
                }
            }
        }
        self.by_set.remove(&self.nodes[id].sid);
        self.nodes[id].alive = false;
        self.nodes[id].frames = MarkedFrameSet::new();
        self.nodes[id].principal_frames.clear();
        self.free.push(id);
    }

    /// Whether `id` names a live slab slot (restore-time validation of
    /// persisted node references; [`node`](Self::node) panics out of range).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id).is_some_and(|node| node.alive)
    }

    /// Serializes the slab positionally. Slot ids are referenced by edge
    /// lists, the free list and the maintainer's root list, so the slab
    /// layout — including dead slots — is part of the graph's persistent
    /// identity. Dead slots carry only their `alive = false` marker
    /// ([`remove`](Self::remove) already emptied their lists and frames);
    /// per-node traversal scratch (`visited`, `last_inter`, `touched`) is
    /// persisted as-is: it is only read within the frame that wrote it, and
    /// round-tripping it keeps restored state byte-comparable to the
    /// original.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.nodes.len());
        for node in &self.nodes {
            enc.put_bool(node.alive);
            if !node.alive {
                continue;
            }
            snapshot::put_set_id(enc, node.sid);
            snapshot::put_frame_set(enc, &node.frames);
            for list in [&node.children, &node.parents] {
                enc.put_usize(list.len());
                for &edge in list {
                    enc.put_usize(edge);
                }
            }
            enc.put_u64(node.visited);
            snapshot::put_set_id(enc, node.last_inter);
            enc.put_u64(node.touched);
            enc.put_usize(node.principal_frames.len());
            for &frame in &node.principal_frames {
                enc.put_u64(frame.raw());
            }
        }
        enc.put_usize(self.free.len());
        for &id in &self.free {
            enc.put_usize(id);
        }
        enc.put_u64(self.edges_added);
        enc.put_u64(self.edges_removed);
    }

    /// Rebuilds a graph written by [`encode`](Self::encode) against the
    /// restored interner (node object sets are re-resolved from their
    /// handles rather than persisted twice). Every structural violation —
    /// dangling handles, out-of-range or asymmetric edges, a free list that
    /// does not cover exactly the dead slots — is corrupt data and surfaces
    /// as [`Error::Corrupt`], never a panic or a silently patched graph.
    pub fn decode(dec: &mut Decoder<'_>, interner: &SetInterner) -> Result<StateGraph> {
        let slots = dec.take_len()?;
        let mut nodes = Vec::with_capacity(slots);
        let mut by_set = FxHashMap::default();
        for id in 0..slots {
            if !dec.take_bool()? {
                nodes.push(Node {
                    sid: SetId::EMPTY,
                    set: ObjectSet::empty(),
                    frames: MarkedFrameSet::new(),
                    children: Vec::new(),
                    parents: Vec::new(),
                    visited: NEVER,
                    last_inter: SetId::EMPTY,
                    touched: NEVER,
                    principal_frames: std::collections::VecDeque::new(),
                    alive: false,
                });
                continue;
            }
            let sid = snapshot::take_set_id(dec)?;
            if sid.is_empty_set() || sid.raw() as usize >= interner.len() {
                return Err(Error::Corrupt(format!(
                    "graph node {id} holds dangling handle {}",
                    sid.raw()
                )));
            }
            if by_set.insert(sid, id).is_some() {
                return Err(Error::Corrupt(format!(
                    "two graph nodes hold handle {}",
                    sid.raw()
                )));
            }
            let frames = snapshot::take_frame_set(dec)?;
            let children = Self::take_edge_list(dec, slots)?;
            let parents = Self::take_edge_list(dec, slots)?;
            let visited = dec.take_u64()?;
            let last_inter = snapshot::take_set_id(dec)?;
            if last_inter.raw() as usize >= interner.len() {
                return Err(Error::Corrupt(format!(
                    "graph node {id} caches dangling intersection handle {}",
                    last_inter.raw()
                )));
            }
            let touched = dec.take_u64()?;
            let count = dec.take_len()?;
            let mut principal_frames = std::collections::VecDeque::with_capacity(count);
            for _ in 0..count {
                principal_frames.push_back(FrameId(dec.take_u64()?));
            }
            nodes.push(Node {
                sid,
                set: interner.resolve(sid).clone(),
                frames,
                children,
                parents,
                visited,
                last_inter,
                touched,
                principal_frames,
                alive: true,
            });
        }
        let free_len = dec.take_len()?;
        let mut free = Vec::with_capacity(free_len);
        let mut in_free = vec![false; slots];
        for _ in 0..free_len {
            let id = dec.take_usize()?;
            if nodes.get(id).is_none_or(|node| node.alive) || in_free[id] {
                return Err(Error::Corrupt(format!(
                    "free list entry {id} is not a distinct dead slot"
                )));
            }
            in_free[id] = true;
            free.push(id);
        }
        let dead = nodes.iter().filter(|node| !node.alive).count();
        if free.len() != dead {
            return Err(Error::Corrupt(format!(
                "free list covers {} slots but the slab holds {dead} dead slots",
                free.len()
            )));
        }
        // Edge symmetry: removal relies on every child edge having its
        // reverse parent edge (and vice versa), and live nodes never point
        // at dead slots.
        for id in 0..slots {
            if !nodes[id].alive {
                continue;
            }
            for &child in &nodes[id].children {
                if !nodes[child].alive || !nodes[child].parents.contains(&id) {
                    return Err(Error::Corrupt(format!(
                        "child edge {id} -> {child} has no live reverse edge"
                    )));
                }
            }
            for &parent in &nodes[id].parents {
                if !nodes[parent].alive || !nodes[parent].children.contains(&id) {
                    return Err(Error::Corrupt(format!(
                        "parent edge {id} -> {parent} has no live reverse edge"
                    )));
                }
            }
        }
        let edges_added = dec.take_u64()?;
        let edges_removed = dec.take_u64()?;
        Ok(StateGraph {
            nodes,
            free,
            by_set,
            edges_added,
            edges_removed,
        })
    }

    fn take_edge_list(dec: &mut Decoder<'_>, slots: usize) -> Result<Vec<NodeId>> {
        let len = dec.take_len()?;
        let mut ids = Vec::with_capacity(len);
        for _ in 0..len {
            let id = dec.take_usize()?;
            if id >= slots {
                return Err(Error::Corrupt(format!(
                    "graph edge references slot {id} beyond a slab of {slots}"
                )));
            }
            ids.push(id);
        }
        Ok(ids)
    }

    /// All nodes reachable from `start` (inclusive) by following child edges
    /// (test support).
    #[cfg(test)]
    pub fn reachable(&self, start: NodeId) -> Vec<NodeId> {
        let mut seen = vec![start];
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            for &child in &self.nodes[id].children {
                if self.nodes[child].alive && !seen.contains(&child) {
                    seen.push(child);
                    stack.push(child);
                }
            }
        }
        seen
    }

    /// Verifies Properties 1 and 2 over the whole graph (test support).
    #[cfg(test)]
    pub fn check_invariants(&self) {
        for (&sid, &id) in &self.by_set {
            let node = &self.nodes[id];
            assert!(node.alive);
            assert_eq!(node.sid, sid);
            for &child in &node.children {
                assert!(
                    self.nodes[child].set.is_proper_subset_of(&node.set),
                    "property 1 violated: {:?} -> {:?}",
                    node.set,
                    self.nodes[child].set
                );
            }
            for (i, &a) in node.children.iter().enumerate() {
                for &b in node.children.iter().skip(i + 1) {
                    let sa = &self.nodes[a].set;
                    let sb = &self.nodes[b].set;
                    assert!(
                        !sa.is_subset_of(sb) && !sb.is_subset_of(sa),
                        "property 2 violated under {:?}: {sa:?} vs {sb:?}",
                        node.set
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::SetInterner;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    /// Test helper: interns `ids` and inserts the node.
    fn insert(g: &mut StateGraph, interner: &mut SetInterner, ids: &[u32]) -> NodeId {
        let s = set(ids);
        let sid = interner.intern(&s);
        g.insert(sid, s)
    }

    #[test]
    fn insert_and_lookup() {
        let mut interner = SetInterner::new();
        let mut g = StateGraph::new();
        let a = insert(&mut g, &mut interner, &[1, 2, 3]);
        let sid = interner.intern(&set(&[1, 2, 3]));
        assert_eq!(g.id_of(sid), Some(a));
        assert_eq!(g.id_of(interner.intern(&set(&[1]))), None);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn attach_enforces_property_1() {
        let mut interner = SetInterner::new();
        let mut g = StateGraph::new();
        let a = insert(&mut g, &mut interner, &[1, 2]);
        let b = insert(&mut g, &mut interner, &[2, 3]);
        // {2,3} is not a subset of {1,2}: the edge is refused.
        g.attach(a, b, &interner);
        assert!(g.node(a).children.is_empty());
        g.check_invariants();
    }

    /// The example of Figure 3: adding {ABF} below {ABCF} must rewire the
    /// existing edge ({ABCF}, {AB}) to ({ABF}, {AB}).
    #[test]
    fn attach_rewires_contained_siblings_like_figure_3() {
        // A=1, B=2, C=3, D=4, F=6.
        let mut interner = SetInterner::new();
        let mut g = StateGraph::new();
        let abcf = insert(&mut g, &mut interner, &[1, 2, 3, 6]);
        let abd = insert(&mut g, &mut interner, &[1, 2, 4]);
        let ab = insert(&mut g, &mut interner, &[1, 2]);
        g.attach(abcf, ab, &interner);
        g.attach(abd, ab, &interner);

        let abf = insert(&mut g, &mut interner, &[1, 2, 6]);
        g.attach(abcf, abf, &interner);

        // {AB} is now reached through {ABF}, not directly from {ABCF}.
        assert!(!g.node(abcf).children.contains(&ab));
        assert!(g.node(abcf).children.contains(&abf));
        assert!(g.node(abf).children.contains(&ab));
        // {ABD} still points at {AB} (Figure 3d).
        assert!(g.node(abd).children.contains(&ab));
        g.check_invariants();
    }

    #[test]
    fn attach_descends_into_tighter_parent() {
        let mut interner = SetInterner::new();
        let mut g = StateGraph::new();
        let abc = insert(&mut g, &mut interner, &[1, 2, 3]);
        let ab = insert(&mut g, &mut interner, &[1, 2]);
        g.attach(abc, ab, &interner);
        let a = insert(&mut g, &mut interner, &[1]);
        // Attaching {A} to {ABC} must land it under {AB}, the tighter parent.
        g.attach(abc, a, &interner);
        assert!(!g.node(abc).children.contains(&a));
        assert!(g.node(ab).children.contains(&a));
        g.check_invariants();
    }

    #[test]
    fn attach_is_idempotent() {
        let mut interner = SetInterner::new();
        let mut g = StateGraph::new();
        let abc = insert(&mut g, &mut interner, &[1, 2, 3]);
        let ab = insert(&mut g, &mut interner, &[1, 2]);
        g.attach(abc, ab, &interner);
        g.attach(abc, ab, &interner);
        assert_eq!(g.node(abc).children.len(), 1);
        assert_eq!(g.node(ab).parents.len(), 1);
        assert_eq!(g.edges_added, 1);
    }

    #[test]
    fn remove_reconnects_parents_to_children() {
        let mut interner = SetInterner::new();
        let mut g = StateGraph::new();
        let abcd = insert(&mut g, &mut interner, &[1, 2, 3, 4]);
        let abc = insert(&mut g, &mut interner, &[1, 2, 3]);
        let ab = insert(&mut g, &mut interner, &[1, 2]);
        g.attach(abcd, abc, &interner);
        g.attach(abc, ab, &interner);
        let removed_edges_before = g.edges_removed;
        g.remove(abc, &interner);
        assert_eq!(g.len(), 2);
        assert!(g.id_of(interner.intern(&set(&[1, 2, 3]))).is_none());
        assert!(g.node(abcd).children.contains(&ab));
        // Both of the removed node's edges are accounted for.
        assert_eq!(g.edges_removed, removed_edges_before + 2);
        g.check_invariants();
    }

    #[test]
    fn removed_slots_are_reused() {
        let mut interner = SetInterner::new();
        let mut g = StateGraph::new();
        let a = insert(&mut g, &mut interner, &[1]);
        g.remove(a, &interner);
        let b = insert(&mut g, &mut interner, &[2]);
        assert_eq!(a, b, "slab slot should be recycled");
        assert_eq!(g.len(), 1);
        assert!(g.id_of(interner.intern(&set(&[1]))).is_none());
    }

    #[test]
    fn reachability_follows_child_edges() {
        let mut interner = SetInterner::new();
        let mut g = StateGraph::new();
        let abcd = insert(&mut g, &mut interner, &[1, 2, 3, 4]);
        let abc = insert(&mut g, &mut interner, &[1, 2, 3]);
        let ab = insert(&mut g, &mut interner, &[1, 2]);
        let cd = insert(&mut g, &mut interner, &[3, 4]);
        g.attach(abcd, abc, &interner);
        g.attach(abc, ab, &interner);
        g.attach(abcd, cd, &interner);
        let mut reachable = g.reachable(abc);
        reachable.sort_unstable();
        assert_eq!(
            reachable,
            vec![abc, ab].into_iter().collect::<Vec<_>>().tap_sorted()
        );
        let all = g.reachable(abcd);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn codec_round_trips_dead_slots_and_free_list() {
        let mut interner = SetInterner::new();
        let mut g = StateGraph::new();
        let a = insert(&mut g, &mut interner, &[1]);
        let b = insert(&mut g, &mut interner, &[1, 2]);
        g.attach(b, a, &interner);
        g.remove(a, &interner);

        let mut enc = Encoder::new();
        g.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let mut back = StateGraph::decode(&mut dec, &interner).unwrap();
        dec.finish().unwrap();

        assert_eq!(back.len(), 1);
        assert_eq!(back.edges_added, g.edges_added);
        assert_eq!(back.edges_removed, g.edges_removed);
        assert!(!back.is_alive(a) && back.is_alive(b));
        let c = back.insert(interner.intern(&set(&[3])), set(&[3]));
        assert_eq!(c, a, "recycled slot must survive the round trip");
    }

    #[test]
    fn decode_rejects_asymmetric_edges() {
        let mut interner = SetInterner::new();
        let mut g = StateGraph::new();
        let a = insert(&mut g, &mut interner, &[1, 2]);
        let b = insert(&mut g, &mut interner, &[1]);
        g.attach(a, b, &interner);
        let mut enc = Encoder::new();
        g.encode(&mut enc);
        let mut clean = StateGraph::decode(&mut Decoder::new(enc.as_bytes()), &interner).unwrap();
        assert_eq!(clean.node(a).children, vec![b]);

        // Drop one direction of the edge: the snapshot is now corrupt.
        clean.node_mut(b).parents.clear();
        let mut enc = Encoder::new();
        clean.encode(&mut enc);
        let err = StateGraph::decode(&mut Decoder::new(enc.as_bytes()), &interner).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    trait TapSorted {
        fn tap_sorted(self) -> Self;
    }
    impl TapSorted for Vec<NodeId> {
        fn tap_sorted(mut self) -> Self {
            self.sort_unstable();
            self
        }
    }
}
