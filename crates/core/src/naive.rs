//! The NAIVE baseline (Section 6.2 of the paper).
//!
//! NAIVE maintains, for every object set ever produced by intersecting the
//! window's frames, the set of frames in which it appears. States are only
//! removed once their frame set empties (no key-frame bookkeeping), and the
//! MCOS property is established *a posteriori* at result-collection time:
//! among states that satisfy the duration threshold and share the same frame
//! set, only the largest object set is kept.
//!
//! # Incremental result collection
//!
//! The a-posteriori step used to rebuild a `frame set → best state` map
//! from scratch every frame — collecting and hashing an O(window) frame
//! vector per state per frame, which degenerates badly on long-lived states
//! (NAIVE's state table is the intersection closure of the window's frames
//! and can grow exponentially while every state stays subset-of-every-frame
//! alive). The maintainer now tracks **groups** incrementally: a group is
//! the set of states sharing one exact frame set, and group membership only
//! changes in ways the per-frame passes already observe:
//!
//! * states that append the arriving frame move together — a group either
//!   appends wholesale (its key changes, membership intact) or *splits*
//!   into appenders and non-appenders;
//! * window expiry trims every member of a group identically (identical
//!   frame sets expire identically), so expiry re-keys — and sometimes
//!   *merges* — groups but never splits them;
//! * new states join the group holding their frame set, or found one.
//!
//! Result collection then touches `O(groups)` entries per frame instead of
//! `O(states)`: each satisfied group contributes its largest member (the
//! MCOS of that frame set). Groups are few even when states are many — on a
//! stable scene with n in-window occlusion patterns there are `2^n` states
//! but only a handful of distinct frame sets.

use tvq_common::{
    Decoder, Encoder, Error, FrameId, FxHashMap, MarkedFrameSet, ObjectSet, RemapTable, Result,
    SetId, SetInterner, WindowSpec,
};

use crate::compaction::{CompactionOutcome, CompactionPolicy};
use crate::maintainer::{check_order, StateMaintainer};
use crate::metrics::MaintenanceMetrics;
use crate::result_set::ResultStateSet;
use crate::snapshot;

/// Sentinel for "group not assigned yet" (states created this frame).
const NO_GROUP: u32 = u32::MAX;

/// One NAIVE state: its frame set plus the group it belongs to.
#[derive(Debug)]
struct StateSlot {
    frames: MarkedFrameSet,
    group: u32,
}

/// A set of states sharing one exact frame set.
#[derive(Debug)]
struct Group {
    /// Member handles (order follows the deterministic per-frame passes).
    members: Vec<SetId>,
    /// The largest member — the MCOS of the group's frame set.
    max: SetId,
    /// The shared frame set as of the end of the previous `advance`; also
    /// the group's key in `by_frames`. Empty for groups founded this frame
    /// (they are keyed during the re-key pass).
    key: Box<[FrameId]>,
    alive: bool,
}

/// Slab of groups plus the exact `frame set → group` index.
#[derive(Debug, Default)]
struct GroupTable {
    groups: Vec<Group>,
    free: Vec<u32>,
    by_frames: FxHashMap<Box<[FrameId]>, u32>,
}

impl GroupTable {
    fn alloc(&mut self, members: Vec<SetId>, max: SetId) -> u32 {
        let group = Group {
            members,
            max,
            key: Box::from([]),
            alive: true,
        };
        match self.free.pop() {
            Some(id) => {
                self.groups[id as usize] = group;
                id
            }
            None => {
                self.groups.push(group);
                (self.groups.len() - 1) as u32
            }
        }
    }

    fn kill(&mut self, id: u32) {
        let group = &mut self.groups[id as usize];
        group.alive = false;
        group.members = Vec::new();
        if !group.key.is_empty() {
            let key = std::mem::take(&mut group.key);
            self.by_frames.remove(&key);
        }
        self.free.push(id);
    }
}

/// The NAIVE state maintainer.
///
/// States are keyed by interned [`SetId`] handles: hashing, equality and
/// lookup are O(1) integer operations and repeated intersections are
/// answered from the interner's memo. Result collection is incremental —
/// see the [module docs](self).
#[derive(Debug)]
pub struct NaiveMaintainer {
    spec: WindowSpec,
    interner: SetInterner,
    states: FxHashMap<SetId, StateSlot>,
    groups: GroupTable,
    /// Groups whose frame set changed this frame (expiry or append) and
    /// must be re-keyed. May contain duplicates; deduplicated in the
    /// re-key pass.
    dirty: Vec<u32>,
    results: ResultStateSet,
    metrics: MaintenanceMetrics,
    last_frame: Option<FrameId>,
}

impl NaiveMaintainer {
    /// Creates a NAIVE maintainer for the given window specification, with a
    /// private interner (no class source).
    pub fn new(spec: WindowSpec) -> Self {
        NaiveMaintainer::with_interner(spec, SetInterner::new())
    }

    /// Creates a NAIVE maintainer around a caller-provided interner (the
    /// engine wires one per feed, sharing its object → class map so result
    /// states carry precomputed class counts).
    pub fn with_interner(spec: WindowSpec, interner: SetInterner) -> Self {
        NaiveMaintainer {
            spec,
            interner,
            states: FxHashMap::default(),
            groups: GroupTable::default(),
            dirty: Vec::new(),
            results: ResultStateSet::new(),
            metrics: MaintenanceMetrics::new(),
            last_frame: None,
        }
    }

    /// Exposes the live states (object set → frame set) for inspection in
    /// tests and the worked-example assertions.
    pub fn states(&self) -> impl Iterator<Item = (&ObjectSet, &MarkedFrameSet)> {
        self.states
            .iter()
            .map(|(&sid, slot)| (self.interner.resolve(sid), &slot.frames))
    }

    /// Re-keys every handle-held structure (state table, group member
    /// lists) through a compaction epoch's remap table.
    /// [`StateMaintainer::maybe_compact`] is the normal entry point.
    pub fn remap(&mut self, table: &RemapTable) {
        let states = std::mem::take(&mut self.states);
        self.states = states
            .into_iter()
            .filter_map(|(sid, slot)| table.remap(sid).map(|new| (new, slot)))
            .collect();
        for group in self.groups.groups.iter_mut().filter(|g| g.alive) {
            for sid in &mut group.members {
                *sid = table.remap(*sid).expect("group members are live states");
            }
            group.max = table.remap(group.max).expect("group max is a live state");
        }
    }

    /// Group-driven window expiry: every member of a group shares its frame
    /// set, so a whole group either keeps all its frames, trims identically
    /// (and is re-keyed), or empties (and dies with all its members).
    fn expire(&mut self, oldest: FrameId) {
        let mut pruned = 0u64;
        for id in 0..self.groups.groups.len() as u32 {
            let group = &self.groups.groups[id as usize];
            if !group.alive {
                continue;
            }
            match group.key.first() {
                Some(&first) if first < oldest => {}
                _ => continue,
            }
            let mut emptied = false;
            for &sid in &self.groups.groups[id as usize].members {
                let slot = self.states.get_mut(&sid).expect("member is a live state");
                slot.frames.expire_before(oldest);
                emptied = slot.frames.is_empty();
            }
            if emptied {
                let members = std::mem::take(&mut self.groups.groups[id as usize].members);
                pruned += members.len() as u64;
                for sid in members {
                    self.states.remove(&sid);
                }
                self.groups.kill(id);
            } else {
                self.dirty.push(id);
            }
        }
        self.metrics.states_pruned += pruned;
    }

    /// The per-frame intersection passes. Returns the per-group appender
    /// lists and the states created this frame (unassigned to groups).
    fn process_frame(
        &mut self,
        frame: FrameId,
        objects: &ObjectSet,
    ) -> (Vec<(u32, Vec<SetId>)>, Vec<SetId>) {
        if objects.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let frame_sid = self.interner.intern(objects);
        // Pass 1: intersect the arriving frame with every existing state
        // (memoized handle → handle lookups after the first occurrence).
        let mut appenders: Vec<SetId> = Vec::new();
        let mut derived: FxHashMap<SetId, Vec<SetId>> = FxHashMap::default();
        for (&sid, _) in self.states.iter() {
            self.metrics.intersections += 1;
            let inter = self.interner.intersect(sid, frame_sid);
            if inter.is_empty_set() {
                continue;
            }
            if inter == sid {
                appenders.push(sid);
            } else {
                derived.entry(inter).or_default().push(sid);
            }
        }
        self.metrics.states_visited += self.states.len() as u64;

        // Pass 2a: append the new frame to states fully contained in it,
        // tallying appenders per group (the split detector's input).
        let mut appended_by_group: FxHashMap<u32, Vec<SetId>> = FxHashMap::default();
        for sid in appenders {
            if let Some(slot) = self.states.get_mut(&sid) {
                slot.frames.push(frame, false);
                self.metrics.frames_appended += 1;
                appended_by_group.entry(slot.group).or_default().push(sid);
            }
        }

        let mut created: Vec<SetId> = Vec::new();
        // Pass 2b: create states for intersections that are not yet
        // materialised; their frame set is the union of all parents' frame
        // sets plus the arriving frame.
        for (target, parents) in derived {
            if self.states.contains_key(&target) {
                // Already materialised: it was (or will be) extended through
                // its own intersection pass.
                continue;
            }
            let mut frames = MarkedFrameSet::new();
            for parent in &parents {
                if let Some(parent_slot) = self.states.get(parent) {
                    frames.merge_from(&parent_slot.frames);
                }
            }
            frames.push(frame, false);
            self.states.insert(
                target,
                StateSlot {
                    frames,
                    group: NO_GROUP,
                },
            );
            created.push(target);
            self.metrics.states_created += 1;
        }

        // Pass 2c: make sure the arriving frame's own object set is a state.
        match self.states.get_mut(&frame_sid) {
            None => {
                self.states.insert(
                    frame_sid,
                    StateSlot {
                        frames: MarkedFrameSet::singleton(frame, false),
                        group: NO_GROUP,
                    },
                );
                created.push(frame_sid);
                self.metrics.states_created += 1;
            }
            Some(slot) => {
                // Pre-existing states were covered by their own pass-1
                // intersection (they are appenders); states created by pass
                // 2b this frame already carry the frame. Either way this
                // push merges into the identical tail.
                slot.frames.push(frame, false);
            }
        }

        // Deterministic split order: group allocation below follows this
        // list, and FxHashMap iteration order is deterministic only per
        // construction history — sort by group id to decouple the two.
        let mut appended: Vec<(u32, Vec<SetId>)> = appended_by_group.into_iter().collect();
        appended.sort_unstable_by_key(|&(group, _)| group);
        (appended, created)
    }

    /// The largest member of `members` (first wins ties — deterministic,
    /// and sound: the group's true MCOS is strictly larger than any
    /// same-size rival sharing its frame set).
    fn max_of(interner: &SetInterner, members: &[SetId]) -> SetId {
        let mut best = members[0];
        for &sid in &members[1..] {
            if interner.len_of(sid) > interner.len_of(best) {
                best = sid;
            }
        }
        best
    }

    /// Splits groups whose members only partially appended the arriving
    /// frame: the appenders move into a fresh group (their frame set now
    /// differs from the stay-behinds'). Whole-group appends just mark the
    /// group for re-keying.
    fn split_appended(&mut self, frame: FrameId, appended: Vec<(u32, Vec<SetId>)>) {
        for (group_id, appenders) in appended {
            let group = &self.groups.groups[group_id as usize];
            debug_assert!(group.alive);
            if appenders.len() == group.members.len() {
                self.dirty.push(group_id);
                continue;
            }
            // Partial append: retain non-appenders (their last frame is not
            // the arriving one), split appenders off.
            let states = &self.states;
            let group = &mut self.groups.groups[group_id as usize];
            group
                .members
                .retain(|sid| states[sid].frames.last() != Some(frame));
            group.max = Self::max_of(&self.interner, &group.members);
            let new_max = Self::max_of(&self.interner, &appenders);
            let new_id = self.groups.alloc(appenders, new_max);
            for &sid in &self.groups.groups[new_id as usize].members {
                self.states.get_mut(&sid).expect("member exists").group = new_id;
            }
            self.dirty.push(group_id);
            self.dirty.push(new_id);
        }
    }

    /// Re-keys every dirty group: old keys leave the index first, then each
    /// group is keyed by its representative's current frame set — colliding
    /// groups (frame sets that became identical through expiry/appends)
    /// merge into the incumbent.
    fn rekey_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let mut dirty = std::mem::take(&mut self.dirty);
        dirty.sort_unstable();
        dirty.dedup();
        dirty.retain(|&id| self.groups.groups[id as usize].alive);
        for &id in &dirty {
            let group = &mut self.groups.groups[id as usize];
            if !group.key.is_empty() {
                let key = std::mem::take(&mut group.key);
                self.groups.by_frames.remove(&key);
            }
        }
        for id in dirty {
            let group = &self.groups.groups[id as usize];
            let representative = group.members.first().expect("live groups are non-empty");
            let key: Box<[FrameId]> = self.states[representative].frames.frames().collect();
            match self.groups.by_frames.get(&key) {
                Some(&incumbent) => {
                    // Merge `id` into the group already holding this frame
                    // set.
                    let members = std::mem::take(&mut self.groups.groups[id as usize].members);
                    let moved_max = self.groups.groups[id as usize].max;
                    for &sid in &members {
                        self.states.get_mut(&sid).expect("member exists").group = incumbent;
                    }
                    let target = &mut self.groups.groups[incumbent as usize];
                    target.members.extend(members);
                    if self.interner.len_of(moved_max) > self.interner.len_of(target.max) {
                        target.max = moved_max;
                    }
                    self.groups.kill(id);
                }
                None => {
                    self.groups.by_frames.insert(key.clone(), id);
                    self.groups.groups[id as usize].key = key;
                }
            }
        }
    }

    /// Assigns the states created this frame to the group holding their
    /// frame set, founding new groups as needed. Runs after
    /// [`rekey_dirty`](Self::rekey_dirty) so every existing key is current.
    fn assign_created(&mut self, created: Vec<SetId>) {
        for sid in created {
            let key: Box<[FrameId]> = self.states[&sid].frames.frames().collect();
            match self.groups.by_frames.get(&key) {
                Some(&group_id) => {
                    let group = &mut self.groups.groups[group_id as usize];
                    group.members.push(sid);
                    if self.interner.len_of(sid) > self.interner.len_of(group.max) {
                        group.max = sid;
                    }
                    self.states.get_mut(&sid).expect("just created").group = group_id;
                }
                None => {
                    let group_id = self.groups.alloc(vec![sid], sid);
                    self.groups.by_frames.insert(key.clone(), group_id);
                    self.groups.groups[group_id as usize].key = key;
                    self.states.get_mut(&sid).expect("just created").group = group_id;
                }
            }
        }
    }

    /// Collects the Result State Set from the groups: each group whose
    /// frame set meets the duration threshold contributes its largest
    /// member (the MCOS of that frame set). O(groups), not O(states).
    fn collect_results(&mut self) {
        self.results.clear();
        for group in self.groups.groups.iter().filter(|g| g.alive) {
            if !self.spec.satisfies_duration(group.key.len()) {
                continue;
            }
            let frames = &self.states[&group.max].frames;
            self.results.insert_with_counts(
                self.interner.resolve(group.max).clone(),
                frames,
                self.interner.cached_counts(group.max),
            );
        }
    }

    /// Verifies the group invariants (every member shares the group's exact
    /// frame set; the index is consistent) — test support.
    #[cfg(test)]
    fn check_group_invariants(&self) {
        let mut seen = 0usize;
        for (id, group) in self.groups.groups.iter().enumerate() {
            if !group.alive {
                continue;
            }
            assert!(!group.members.is_empty(), "live group {id} has no members");
            assert_eq!(
                self.groups.by_frames.get(&group.key),
                Some(&(id as u32)),
                "group {id} key missing from the index"
            );
            assert!(group.members.contains(&group.max));
            for &sid in &group.members {
                let slot = &self.states[&sid];
                assert_eq!(slot.group, id as u32);
                let frames: Box<[FrameId]> = slot.frames.frames().collect();
                assert_eq!(frames, group.key, "member frame set diverged");
                assert!(
                    self.interner.len_of(sid) <= self.interner.len_of(group.max),
                    "max is not maximal"
                );
            }
            seen += group.members.len();
        }
        assert_eq!(seen, self.states.len(), "orphaned states");
        assert_eq!(
            self.groups.by_frames.len(),
            self.groups.groups.iter().filter(|g| g.alive).count()
        );
    }
}

impl StateMaintainer for NaiveMaintainer {
    fn spec(&self) -> WindowSpec {
        self.spec
    }

    fn advance(&mut self, frame: FrameId, objects: &ObjectSet) -> Result<()> {
        check_order(self.last_frame, frame)?;
        self.last_frame = Some(frame);
        self.metrics.frames_processed += 1;

        self.expire(self.spec.oldest_valid(frame));
        let (appended, created) = self.process_frame(frame, objects);
        self.split_appended(frame, appended);
        self.rekey_dirty();
        self.assign_created(created);
        self.metrics.observe_live_states(self.states.len());
        self.metrics.observe_interner(&self.interner);
        self.collect_results();
        Ok(())
    }

    fn results(&self) -> &ResultStateSet {
        &self.results
    }

    fn metrics(&self) -> &MaintenanceMetrics {
        &self.metrics
    }

    fn live_states(&self) -> usize {
        self.states.len()
    }

    fn name(&self) -> &'static str {
        "NAIVE"
    }

    fn maybe_compact(&mut self, policy: &CompactionPolicy) -> Option<CompactionOutcome> {
        if !policy.should_compact(self.states.len() + 1, self.interner.len()) {
            return None;
        }
        let live: Vec<SetId> = self.states.keys().copied().collect();
        let mut table = self.interner.compact(&live);
        self.remap(&table);
        self.metrics.compactions += 1;
        self.metrics.observe_interner(&self.interner);
        Some(CompactionOutcome {
            epoch: table.epoch(),
            retired_sets: table.retired(),
            retired_objects: table.take_retired_objects(),
        })
    }

    fn snapshot_state(&self, enc: &mut Encoder) -> Result<()> {
        debug_assert!(self.dirty.is_empty(), "dirty list drains every advance");
        snapshot::put_interner(enc, &self.interner);
        snapshot::put_opt_frame(enc, self.last_frame);
        // Handle order makes the byte stream deterministic across runs.
        let mut sids: Vec<SetId> = self.states.keys().copied().collect();
        sids.sort_unstable();
        enc.put_usize(sids.len());
        for sid in sids {
            let slot = &self.states[&sid];
            snapshot::put_set_id(enc, sid);
            snapshot::put_frame_set(enc, &slot.frames);
            enc.put_u32(slot.group);
        }
        // The group slab is persisted positionally (slot ids appear inside
        // state slots and the free list), dead slots as a lone `false`.
        enc.put_usize(self.groups.groups.len());
        for group in &self.groups.groups {
            enc.put_bool(group.alive);
            if !group.alive {
                continue;
            }
            enc.put_usize(group.members.len());
            for &member in &group.members {
                snapshot::put_set_id(enc, member);
            }
            snapshot::put_set_id(enc, group.max);
            enc.put_usize(group.key.len());
            for &frame in group.key.iter() {
                enc.put_u64(frame.raw());
            }
        }
        enc.put_usize(self.groups.free.len());
        for &id in &self.groups.free {
            enc.put_u32(id);
        }
        snapshot::put_metrics(enc, &self.metrics);
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<()> {
        if !self.states.is_empty() || self.last_frame.is_some() {
            return Err(Error::Store(
                "restore_state requires a freshly built maintainer".into(),
            ));
        }
        snapshot::restore_interner(dec, &mut self.interner)?;
        self.last_frame = snapshot::take_opt_frame(dec)?;
        let states = dec.take_len()?;
        for _ in 0..states {
            let sid = snapshot::take_set_id(dec)?;
            let frames = snapshot::take_frame_set(dec)?;
            let group = dec.take_u32()?;
            if sid.is_empty_set() || sid.raw() as usize >= self.interner.len() {
                return Err(Error::Corrupt(format!(
                    "NAIVE state references handle {} outside the restored arena",
                    sid.raw()
                )));
            }
            if self
                .states
                .insert(sid, StateSlot { frames, group })
                .is_some()
            {
                return Err(Error::Corrupt(format!(
                    "duplicate NAIVE state for handle {}",
                    sid.raw()
                )));
            }
        }
        let slots = dec.take_len()?;
        for id in 0..slots {
            let alive = dec.take_bool()?;
            if !alive {
                self.groups.groups.push(Group {
                    members: Vec::new(),
                    max: SetId::EMPTY,
                    key: Box::from([]),
                    alive: false,
                });
                continue;
            }
            let member_count = dec.take_len()?;
            let mut members = Vec::with_capacity(member_count);
            for _ in 0..member_count {
                let member = snapshot::take_set_id(dec)?;
                if !self.states.contains_key(&member) {
                    return Err(Error::Corrupt(format!(
                        "group {id} member {} is not a restored state",
                        member.raw()
                    )));
                }
                members.push(member);
            }
            let max = snapshot::take_set_id(dec)?;
            if members.is_empty() || !members.contains(&max) {
                return Err(Error::Corrupt(format!(
                    "group {id} is empty or its max is not a member"
                )));
            }
            let key_len = dec.take_len()?;
            let mut key = Vec::with_capacity(key_len);
            for _ in 0..key_len {
                key.push(FrameId(dec.take_u64()?));
            }
            let key: Box<[FrameId]> = key.into();
            if self
                .groups
                .by_frames
                .insert(key.clone(), id as u32)
                .is_some()
            {
                return Err(Error::Corrupt(format!(
                    "two live groups share one frame-set key (group {id})"
                )));
            }
            self.groups.groups.push(Group {
                members,
                max,
                key,
                alive: true,
            });
        }
        let free_count = dec.take_len()?;
        for _ in 0..free_count {
            let id = dec.take_u32()?;
            if self
                .groups
                .groups
                .get(id as usize)
                .is_none_or(|group| group.alive)
            {
                return Err(Error::Corrupt(format!(
                    "free-list entry {id} is not a dead slot"
                )));
            }
            self.groups.free.push(id);
        }
        for (sid, slot) in &self.states {
            if self
                .groups
                .groups
                .get(slot.group as usize)
                .is_none_or(|group| !group.alive || !group.members.contains(sid))
            {
                return Err(Error::Corrupt(format!(
                    "state {} points at group {} which does not own it",
                    sid.raw(),
                    slot.group
                )));
            }
        }
        self.metrics = snapshot::take_metrics(dec)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    /// Objects of the paper's running example: A=1, B=2, C=3, D=4, F=6.
    fn paper_frames() -> Vec<ObjectSet> {
        vec![
            set(&[2]),
            set(&[1, 2, 3]),
            set(&[1, 2, 4, 6]),
            set(&[1, 2, 3, 6]),
            set(&[1, 2, 4]),
        ]
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let spec = WindowSpec::new(4, 2).unwrap();
        let mut original = NaiveMaintainer::new(spec);
        let patterns = paper_frames();
        for (i, frame) in patterns.iter().cycle().take(8).enumerate() {
            original.advance(FrameId(i as u64), frame).unwrap();
        }

        let mut enc = tvq_common::Encoder::new();
        original.snapshot_state(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut restored = NaiveMaintainer::new(spec);
        let mut dec = tvq_common::Decoder::new(&bytes);
        restored.restore_state(&mut dec).unwrap();
        dec.finish().unwrap();
        restored.check_group_invariants();

        assert_eq!(restored.live_states(), original.live_states());
        assert_eq!(restored.metrics(), original.metrics());
        for (i, frame) in patterns.iter().cycle().take(22).enumerate().skip(8) {
            original.advance(FrameId(i as u64), frame).unwrap();
            restored.advance(FrameId(i as u64), frame).unwrap();
            assert_eq!(
                restored.results(),
                original.results(),
                "diverged at frame {i}"
            );
        }
        // Memo gauges drift (the intersection cache is not persisted); every
        // other counter must agree.
        assert_eq!(
            snapshot::scrub_cache_gauges(restored.metrics()),
            snapshot::scrub_cache_gauges(original.metrics())
        );
    }

    /// Table 1 of the paper: the states maintained per frame with w=4, d=3.
    #[test]
    fn table_1_states_per_frame() {
        let spec = WindowSpec::new(4, 3).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        let frames = paper_frames();

        let states_at = |m: &NaiveMaintainer| -> Vec<(ObjectSet, Vec<u64>)> {
            let mut v: Vec<(ObjectSet, Vec<u64>)> = m
                .states()
                .map(|(s, f)| (s.clone(), f.frames().map(|x| x.raw()).collect()))
                .collect();
            v.sort();
            v
        };

        m.advance(FrameId(0), &frames[0]).unwrap();
        m.check_group_invariants();
        assert_eq!(states_at(&m), vec![(set(&[2]), vec![0])]);

        m.advance(FrameId(1), &frames[1]).unwrap();
        m.check_group_invariants();
        assert_eq!(
            states_at(&m),
            vec![(set(&[1, 2, 3]), vec![1]), (set(&[2]), vec![0, 1])]
        );

        m.advance(FrameId(2), &frames[2]).unwrap();
        m.check_group_invariants();
        assert_eq!(
            states_at(&m),
            vec![
                (set(&[1, 2]), vec![1, 2]),
                (set(&[1, 2, 3]), vec![1]),
                (set(&[1, 2, 4, 6]), vec![2]),
                (set(&[2]), vec![0, 1, 2]),
            ]
        );

        m.advance(FrameId(3), &frames[3]).unwrap();
        m.check_group_invariants();
        assert_eq!(
            states_at(&m),
            vec![
                (set(&[1, 2]), vec![1, 2, 3]),
                (set(&[1, 2, 3]), vec![1, 3]),
                (set(&[1, 2, 3, 6]), vec![3]),
                (set(&[1, 2, 4, 6]), vec![2]),
                (set(&[1, 2, 6]), vec![2, 3]),
                (set(&[2]), vec![0, 1, 2, 3]),
            ]
        );

        m.advance(FrameId(4), &frames[4]).unwrap();
        m.check_group_invariants();
        assert_eq!(
            states_at(&m),
            vec![
                (set(&[1, 2]), vec![1, 2, 3, 4]),
                (set(&[1, 2, 3]), vec![1, 3]),
                (set(&[1, 2, 3, 6]), vec![3]),
                (set(&[1, 2, 4]), vec![2, 4]),
                (set(&[1, 2, 4, 6]), vec![2]),
                (set(&[1, 2, 6]), vec![2, 3]),
                (set(&[2]), vec![1, 2, 3, 4]),
            ]
        );
    }

    /// Expected satisfied MCOS per frame (the EXP column of Table 1).
    #[test]
    fn table_1_expected_results() {
        let spec = WindowSpec::new(4, 3).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        let frames = paper_frames();

        m.advance(FrameId(0), &frames[0]).unwrap();
        assert!(m.results().is_empty());
        m.advance(FrameId(1), &frames[1]).unwrap();
        assert!(m.results().is_empty());
        m.advance(FrameId(2), &frames[2]).unwrap();
        assert_eq!(m.results().object_sets(), vec![set(&[2])]);
        m.advance(FrameId(3), &frames[3]).unwrap();
        assert_eq!(m.results().object_sets(), vec![set(&[1, 2]), set(&[2])]);
        m.advance(FrameId(4), &frames[4]).unwrap();
        // {B} has frames {1,2,3,4} which equals {AB}'s frame set, so only the
        // maximal set {AB} is an MCOS.
        assert_eq!(m.results().object_sets(), vec![set(&[1, 2])]);
    }

    #[test]
    fn empty_frames_do_not_create_states() {
        let spec = WindowSpec::new(3, 1).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        m.advance(FrameId(0), &ObjectSet::empty()).unwrap();
        assert_eq!(m.live_states(), 0);
        m.advance(FrameId(1), &set(&[1])).unwrap();
        m.advance(FrameId(2), &ObjectSet::empty()).unwrap();
        assert_eq!(m.live_states(), 1);
        assert!(m.results().contains(&set(&[1])));
        m.check_group_invariants();
    }

    #[test]
    fn states_expire_with_the_window() {
        let spec = WindowSpec::new(2, 1).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        m.advance(FrameId(0), &set(&[1])).unwrap();
        m.advance(FrameId(1), &set(&[2])).unwrap();
        m.advance(FrameId(2), &set(&[2])).unwrap();
        // {1} is gone once frame 0 leaves the window.
        assert_eq!(m.live_states(), 1);
        assert!(m.results().contains(&set(&[2])));
        assert_eq!(m.metrics().states_pruned, 1);
        m.check_group_invariants();
    }

    #[test]
    fn rejects_out_of_order_frames() {
        let spec = WindowSpec::new(4, 1).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        m.advance(FrameId(2), &set(&[1])).unwrap();
        assert!(m.advance(FrameId(2), &set(&[1])).is_err());
        assert!(m.advance(FrameId(0), &set(&[1])).is_err());
    }

    #[test]
    fn metrics_count_work() {
        let spec = WindowSpec::new(4, 2).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        for (i, frame) in paper_frames().into_iter().enumerate() {
            m.advance(FrameId(i as u64), &frame).unwrap();
        }
        let metrics = m.metrics();
        assert_eq!(metrics.frames_processed, 5);
        assert!(metrics.states_created >= 5);
        assert!(metrics.intersections > 0);
        assert!(metrics.peak_live_states >= 6);
    }

    /// Groups split when only part of a group appends, merge when expiry
    /// equalises frame sets, and die when the window slides past them.
    #[test]
    fn group_lifecycle_survives_splits_merges_and_death() {
        let spec = WindowSpec::new(4, 1).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        // Two disjoint pairs co-occur, then only one keeps appearing, then
        // neither.
        m.advance(FrameId(0), &set(&[1, 2, 3, 4])).unwrap();
        m.check_group_invariants();
        m.advance(FrameId(1), &set(&[1, 2])).unwrap();
        m.check_group_invariants();
        m.advance(FrameId(2), &set(&[3, 4])).unwrap();
        m.check_group_invariants();
        m.advance(FrameId(3), &set(&[1, 2])).unwrap();
        m.check_group_invariants();
        // Frame 0 expires: {1,2,3,4} dies, {1,2} and {3,4} remain with
        // different frame sets.
        m.advance(FrameId(4), &set(&[5])).unwrap();
        m.check_group_invariants();
        for i in 5..9u64 {
            m.advance(FrameId(i), &ObjectSet::empty()).unwrap();
            m.check_group_invariants();
        }
        assert_eq!(m.live_states(), 0, "window slid past everything");
        assert!(m.results().is_empty());
    }

    /// NAIVE results agree with MFS frame-for-frame on a feed dense enough
    /// to exercise group splits and merges continuously.
    #[test]
    fn groups_agree_with_mfs_on_a_churning_feed() {
        let spec = WindowSpec::new(6, 2).unwrap();
        let mut naive = NaiveMaintainer::new(spec);
        let mut mfs = crate::mfs::MfsMaintainer::new(spec);
        let patterns: Vec<ObjectSet> = vec![
            set(&[1, 2, 3]),
            set(&[1, 2, 3, 4]),
            set(&[2, 3, 4]),
            set(&[1, 4]),
            set(&[1, 2, 3]),
            ObjectSet::empty(),
            set(&[3, 4, 5]),
            set(&[1, 2, 3, 4, 5]),
        ];
        for (i, objects) in patterns.iter().cycle().take(64).enumerate() {
            let fid = FrameId(i as u64);
            naive.advance(fid, objects).unwrap();
            mfs.advance(fid, objects).unwrap();
            naive.check_group_invariants();
            assert_eq!(
                naive.results(),
                mfs.results(),
                "NAIVE and MFS diverged at frame {i}"
            );
        }
    }

    /// Compaction keeps the group structure intact.
    #[test]
    fn compaction_remaps_groups() {
        let spec = WindowSpec::new(3, 1).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        for i in 0..12u64 {
            // Rotating objects: old sets retire from the arena.
            let base = (i / 3) as u32 * 10;
            m.advance(FrameId(i), &set(&[base, base + 1])).unwrap();
        }
        let arena_before = m.interner.len();
        let outcome = m
            .maybe_compact(&CompactionPolicy::every(1))
            .expect("sparse arena compacts");
        assert!(outcome.retired_sets > 0);
        assert!(
            !outcome.retired_objects.is_empty(),
            "rotated-away objects are reported retired"
        );
        assert!(m.interner.len() < arena_before);
        m.check_group_invariants();
        assert_eq!(m.metrics().compactions, 1);
        // The maintainer keeps answering correctly after the remap.
        m.advance(FrameId(12), &set(&[40, 41])).unwrap();
        m.check_group_invariants();
        assert!(m.results().contains(&set(&[40, 41])));
    }
}
