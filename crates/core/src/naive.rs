//! The NAIVE baseline (Section 6.2 of the paper).
//!
//! NAIVE maintains, for every object set ever produced by intersecting the
//! window's frames, the set of frames in which it appears. States are only
//! removed once their frame set empties (no key-frame bookkeeping), and the
//! MCOS property is established *a posteriori* at result-collection time:
//! among states that satisfy the duration threshold and share the same frame
//! set, only the largest object set is kept.

use std::collections::HashMap;

use tvq_common::{
    FrameId, FxHashMap, MarkedFrameSet, ObjectSet, Result, SetId, SetInterner, WindowSpec,
};

use crate::maintainer::{check_order, StateMaintainer};
use crate::metrics::MaintenanceMetrics;
use crate::result_set::ResultStateSet;

/// The NAIVE state maintainer.
///
/// States are keyed by interned [`SetId`] handles: hashing, equality and
/// lookup are O(1) integer operations and repeated intersections are
/// answered from the interner's memo.
#[derive(Debug)]
pub struct NaiveMaintainer {
    spec: WindowSpec,
    interner: SetInterner,
    states: FxHashMap<SetId, MarkedFrameSet>,
    results: ResultStateSet,
    metrics: MaintenanceMetrics,
    last_frame: Option<FrameId>,
}

impl NaiveMaintainer {
    /// Creates a NAIVE maintainer for the given window specification, with a
    /// private interner (no class source).
    pub fn new(spec: WindowSpec) -> Self {
        NaiveMaintainer::with_interner(spec, SetInterner::new())
    }

    /// Creates a NAIVE maintainer around a caller-provided interner (the
    /// engine wires one per feed, sharing its object → class map so result
    /// states carry precomputed class counts).
    pub fn with_interner(spec: WindowSpec, interner: SetInterner) -> Self {
        NaiveMaintainer {
            spec,
            interner,
            states: FxHashMap::default(),
            results: ResultStateSet::new(),
            metrics: MaintenanceMetrics::new(),
            last_frame: None,
        }
    }

    /// Exposes the live states (object set → frame set) for inspection in
    /// tests and the worked-example assertions.
    pub fn states(&self) -> impl Iterator<Item = (&ObjectSet, &MarkedFrameSet)> {
        self.states
            .iter()
            .map(|(&sid, frames)| (self.interner.resolve(sid), frames))
    }

    fn expire(&mut self, oldest: FrameId) {
        let mut pruned = 0u64;
        self.states.retain(|_, frames| {
            frames.expire_before(oldest);
            let keep = !frames.is_empty();
            if !keep {
                pruned += 1;
            }
            keep
        });
        self.metrics.states_pruned += pruned;
    }

    fn process_frame(&mut self, frame: FrameId, objects: &ObjectSet) {
        if objects.is_empty() {
            return;
        }
        let frame_sid = self.interner.intern(objects);
        // Pass 1: intersect the arriving frame with every existing state
        // (memoized handle → handle lookups after the first occurrence).
        let mut appenders: Vec<SetId> = Vec::new();
        let mut derived: FxHashMap<SetId, Vec<SetId>> = FxHashMap::default();
        for (&sid, _) in self.states.iter() {
            self.metrics.intersections += 1;
            let inter = self.interner.intersect(sid, frame_sid);
            if inter.is_empty_set() {
                continue;
            }
            if inter == sid {
                appenders.push(sid);
            } else {
                derived.entry(inter).or_default().push(sid);
            }
        }
        self.metrics.states_visited += self.states.len() as u64;

        // Pass 2a: append the new frame to states fully contained in it.
        for sid in appenders {
            if let Some(frames) = self.states.get_mut(&sid) {
                frames.push(frame, false);
                self.metrics.frames_appended += 1;
            }
        }

        // Pass 2b: create states for intersections that are not yet
        // materialised; their frame set is the union of all parents' frame
        // sets plus the arriving frame.
        for (target, parents) in derived {
            if self.states.contains_key(&target) {
                // Already materialised: it was (or will be) extended through
                // its own intersection pass.
                continue;
            }
            let mut frames = MarkedFrameSet::new();
            for parent in &parents {
                if let Some(parent_frames) = self.states.get(parent) {
                    frames.merge_from(parent_frames);
                }
            }
            frames.push(frame, false);
            self.states.insert(target, frames);
            self.metrics.states_created += 1;
        }

        // Pass 2c: make sure the arriving frame's own object set is a state.
        match self.states.get_mut(&frame_sid) {
            None => {
                self.states
                    .insert(frame_sid, MarkedFrameSet::singleton(frame, false));
                self.metrics.states_created += 1;
            }
            Some(frames) => {
                // Created by pass 2b this frame or pre-existing; ensure the
                // frame itself is recorded.
                frames.push(frame, false);
            }
        }
    }

    /// Collects the Result State Set: states meeting the duration threshold,
    /// deduplicated by frame set keeping the maximal object set (which is the
    /// MCOS of that frame set).
    fn collect_results(&mut self) {
        let mut best: HashMap<Vec<FrameId>, SetId> = HashMap::new();
        for (&sid, frames) in &self.states {
            if !self.spec.satisfies_duration(frames.len()) {
                continue;
            }
            let key: Vec<FrameId> = frames.frames().collect();
            match best.get(&key) {
                Some(&existing) if self.interner.len_of(existing) >= self.interner.len_of(sid) => {}
                _ => {
                    best.insert(key, sid);
                }
            }
        }
        self.results.clear();
        for (frames, sid) in best {
            let marked: MarkedFrameSet = frames.into_iter().map(|f| (f, false)).collect();
            self.results.insert_with_counts(
                self.interner.resolve(sid).clone(),
                &marked,
                self.interner.cached_counts(sid),
            );
        }
    }
}

impl StateMaintainer for NaiveMaintainer {
    fn spec(&self) -> WindowSpec {
        self.spec
    }

    fn advance(&mut self, frame: FrameId, objects: &ObjectSet) -> Result<()> {
        check_order(self.last_frame, frame)?;
        self.last_frame = Some(frame);
        self.metrics.frames_processed += 1;

        self.expire(self.spec.oldest_valid(frame));
        self.process_frame(frame, objects);
        self.metrics.observe_live_states(self.states.len());
        self.metrics.interned_sets = self.interner.len().saturating_sub(1) as u64;
        self.collect_results();
        Ok(())
    }

    fn results(&self) -> &ResultStateSet {
        &self.results
    }

    fn metrics(&self) -> &MaintenanceMetrics {
        &self.metrics
    }

    fn live_states(&self) -> usize {
        self.states.len()
    }

    fn name(&self) -> &'static str {
        "NAIVE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    /// Objects of the paper's running example: A=1, B=2, C=3, D=4, F=6.
    fn paper_frames() -> Vec<ObjectSet> {
        vec![
            set(&[2]),
            set(&[1, 2, 3]),
            set(&[1, 2, 4, 6]),
            set(&[1, 2, 3, 6]),
            set(&[1, 2, 4]),
        ]
    }

    /// Table 1 of the paper: the states maintained per frame with w=4, d=3.
    #[test]
    fn table_1_states_per_frame() {
        let spec = WindowSpec::new(4, 3).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        let frames = paper_frames();

        let states_at = |m: &NaiveMaintainer| -> Vec<(ObjectSet, Vec<u64>)> {
            let mut v: Vec<(ObjectSet, Vec<u64>)> = m
                .states()
                .map(|(s, f)| (s.clone(), f.frames().map(|x| x.raw()).collect()))
                .collect();
            v.sort();
            v
        };

        m.advance(FrameId(0), &frames[0]).unwrap();
        assert_eq!(states_at(&m), vec![(set(&[2]), vec![0])]);

        m.advance(FrameId(1), &frames[1]).unwrap();
        assert_eq!(
            states_at(&m),
            vec![(set(&[1, 2, 3]), vec![1]), (set(&[2]), vec![0, 1])]
        );

        m.advance(FrameId(2), &frames[2]).unwrap();
        assert_eq!(
            states_at(&m),
            vec![
                (set(&[1, 2]), vec![1, 2]),
                (set(&[1, 2, 3]), vec![1]),
                (set(&[1, 2, 4, 6]), vec![2]),
                (set(&[2]), vec![0, 1, 2]),
            ]
        );

        m.advance(FrameId(3), &frames[3]).unwrap();
        assert_eq!(
            states_at(&m),
            vec![
                (set(&[1, 2]), vec![1, 2, 3]),
                (set(&[1, 2, 3]), vec![1, 3]),
                (set(&[1, 2, 3, 6]), vec![3]),
                (set(&[1, 2, 4, 6]), vec![2]),
                (set(&[1, 2, 6]), vec![2, 3]),
                (set(&[2]), vec![0, 1, 2, 3]),
            ]
        );

        m.advance(FrameId(4), &frames[4]).unwrap();
        assert_eq!(
            states_at(&m),
            vec![
                (set(&[1, 2]), vec![1, 2, 3, 4]),
                (set(&[1, 2, 3]), vec![1, 3]),
                (set(&[1, 2, 3, 6]), vec![3]),
                (set(&[1, 2, 4]), vec![2, 4]),
                (set(&[1, 2, 4, 6]), vec![2]),
                (set(&[1, 2, 6]), vec![2, 3]),
                (set(&[2]), vec![1, 2, 3, 4]),
            ]
        );
    }

    /// Expected satisfied MCOS per frame (the EXP column of Table 1).
    #[test]
    fn table_1_expected_results() {
        let spec = WindowSpec::new(4, 3).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        let frames = paper_frames();

        m.advance(FrameId(0), &frames[0]).unwrap();
        assert!(m.results().is_empty());
        m.advance(FrameId(1), &frames[1]).unwrap();
        assert!(m.results().is_empty());
        m.advance(FrameId(2), &frames[2]).unwrap();
        assert_eq!(m.results().object_sets(), vec![set(&[2])]);
        m.advance(FrameId(3), &frames[3]).unwrap();
        assert_eq!(m.results().object_sets(), vec![set(&[1, 2]), set(&[2])]);
        m.advance(FrameId(4), &frames[4]).unwrap();
        // {B} has frames {1,2,3,4} which equals {AB}'s frame set, so only the
        // maximal set {AB} is an MCOS.
        assert_eq!(m.results().object_sets(), vec![set(&[1, 2])]);
    }

    #[test]
    fn empty_frames_do_not_create_states() {
        let spec = WindowSpec::new(3, 1).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        m.advance(FrameId(0), &ObjectSet::empty()).unwrap();
        assert_eq!(m.live_states(), 0);
        m.advance(FrameId(1), &set(&[1])).unwrap();
        m.advance(FrameId(2), &ObjectSet::empty()).unwrap();
        assert_eq!(m.live_states(), 1);
        assert!(m.results().contains(&set(&[1])));
    }

    #[test]
    fn states_expire_with_the_window() {
        let spec = WindowSpec::new(2, 1).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        m.advance(FrameId(0), &set(&[1])).unwrap();
        m.advance(FrameId(1), &set(&[2])).unwrap();
        m.advance(FrameId(2), &set(&[2])).unwrap();
        // {1} is gone once frame 0 leaves the window.
        assert_eq!(m.live_states(), 1);
        assert!(m.results().contains(&set(&[2])));
        assert_eq!(m.metrics().states_pruned, 1);
    }

    #[test]
    fn rejects_out_of_order_frames() {
        let spec = WindowSpec::new(4, 1).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        m.advance(FrameId(2), &set(&[1])).unwrap();
        assert!(m.advance(FrameId(2), &set(&[1])).is_err());
        assert!(m.advance(FrameId(0), &set(&[1])).is_err());
    }

    #[test]
    fn metrics_count_work() {
        let spec = WindowSpec::new(4, 2).unwrap();
        let mut m = NaiveMaintainer::new(spec);
        for (i, frame) in paper_frames().into_iter().enumerate() {
            m.advance(FrameId(i as u64), &frame).unwrap();
        }
        let metrics = m.metrics();
        assert_eq!(metrics.frames_processed, 5);
        assert!(metrics.states_created >= 5);
        assert!(metrics.intersections > 0);
        assert!(metrics.peak_live_states >= 6);
    }
}
