//! Tracker-id lifecycle: generations, aliasing and epoch retirement.
//!
//! Object trackers *reuse* identifiers: when a track ends, its id eventually
//! returns for a different physical object — possibly of a different class.
//! Fed naively into MCOS generation this is a correctness hazard twice over:
//!
//! 1. **splicing** — a window state containing old-generation object `o5`
//!    would have frames of the *new* `o5` appended to its frame set, fusing
//!    two unrelated physical objects into one co-occurrence history;
//! 2. **stale classes** — the class recorded at first sight would keep being
//!    used for counts and pruning verdicts after the id was recycled into a
//!    different class.
//!
//! [`ObjectLifecycle`] makes reuse well-defined. It sits between the feed's
//! *external* (tracker) identifiers and the *internal* identifiers every
//! downstream structure (interner universe, states, class store) operates
//! on, maintaining the invariant that **an internal identifier denotes one
//! object generation with one immutable class, forever**:
//!
//! * the first sighting of an external id binds it to itself (`internal ==
//!   external`) — the common case costs one map lookup and no translation;
//! * an external id that reappears **with a different class** while its old
//!   binding may still be referenced is a new object: it is bound to a
//!   fresh *alias* internal id (allocated from the top of the id space
//!   downward), so no live state can absorb the newcomer's frames;
//! * at compaction epoch boundaries the maintainer reports its **retire
//!   set** — internal ids no surviving state references. The lifecycle
//!   releases their class-store references, forgets their bindings and
//!   aliases, and thereby keeps every per-object map bounded by the live
//!   window. A retired id that reappears (same or different class) starts a
//!   **new generation**: it re-binds, re-registers its class and is
//!   re-judged by the pruner — never trusted from stale state;
//! * a reappearance with the *same* class while the binding is still live is
//!   indistinguishable from an occlusion the tracker bridged, and is — by
//!   contract — the same object. This mirrors the tracker guarantee the
//!   paper assumes and is the documented limit of reuse detection.
//!
//! Every binding carries a monotonically increasing **generation** number
//! (unique per engine, never reused) so tests, metrics and downstream
//! consumers can observe reuse explicitly.

use std::sync::PoisonError;

use tvq_common::{ClassId, FxHashMap, FxHashSet, ObjectId, SharedClassMap};

/// The current binding of one external (tracker) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveBinding {
    /// The internal identifier downstream structures see.
    pub internal: ObjectId,
    /// The class this engine observed for the binding (matches the shared
    /// store except under cross-feed id collisions, which shared stores
    /// document as unsupported).
    pub class: ClassId,
    /// The binding's generation (engine-wide monotone counter).
    pub generation: u64,
}

/// Generation-aware external → internal identifier resolution with
/// epoch-boundary retirement. See the [module docs](self).
#[derive(Debug)]
pub struct ObjectLifecycle {
    store: SharedClassMap,
    /// External id → its current binding (the per-frame fast path).
    live: FxHashMap<ObjectId, LiveBinding>,
    /// Internal ids currently holding one class-store reference each.
    registered: FxHashSet<ObjectId>,
    /// Alias internal id → the external id it stands for (only reuse
    /// generations appear here; first generations bind to themselves).
    /// Alias values are minted by the class store so sharers never
    /// collide; this map only records *this* engine's aliases.
    aliases: FxHashMap<ObjectId, ObjectId>,
    next_generation: u64,
    retired_total: u64,
    tracks_ended: u64,
    /// Deferred slow-path detections of the frame being resolved.
    pending: Vec<(ObjectId, ClassId)>,
}

impl ObjectLifecycle {
    /// Creates a lifecycle around a (possibly shared) class store.
    pub fn new(store: SharedClassMap) -> Self {
        ObjectLifecycle {
            store,
            live: FxHashMap::default(),
            registered: FxHashSet::default(),
            aliases: FxHashMap::default(),
            next_generation: 0,
            retired_total: 0,
            tracks_ended: 0,
            pending: Vec::new(),
        }
    }

    /// The shared class store this lifecycle registers into.
    pub fn store(&self) -> &SharedClassMap {
        &self.store
    }

    /// Resolves one frame of `(external id, class)` detections into internal
    /// identifiers, appending them to `out` (order follows the detections;
    /// callers building an `ObjectSet` sort anyway). Detections whose class
    /// is not in `relevant` are skipped before any state is touched.
    ///
    /// The steady state — every relevant detection already bound with a
    /// matching class — never takes the store's write lock; only frames
    /// introducing new bindings (first sights, reuse, post-retirement
    /// reappearances) pay it, once.
    pub fn resolve_frame(
        &mut self,
        detections: &[(ObjectId, ClassId)],
        relevant: &FxHashSet<ClassId>,
        out: &mut Vec<ObjectId>,
    ) {
        debug_assert!(self.pending.is_empty());
        for &(external, class) in detections {
            if !relevant.contains(&class) {
                continue;
            }
            match self.live.get(&external) {
                Some(binding) if binding.class == class => out.push(binding.internal),
                _ => self.pending.push((external, class)),
            }
        }
        if self.pending.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending);
        {
            // Entries are immutable while referenced, so a poisoned lock
            // still holds usable data (same reasoning as the LivePruner).
            let mut store = self.store.write().unwrap_or_else(PoisonError::into_inner);
            for (external, class) in pending.drain(..) {
                // Re-check: an identifier duplicated within one frame was
                // bound by its own earlier slow-path visit.
                if let Some(binding) = self.live.get(&external) {
                    if binding.class == class {
                        out.push(binding.internal);
                        continue;
                    }
                }
                debug_assert!(
                    external.raw() < store.alias_floor(),
                    "external id {external} collides with the alias range"
                );
                // The old binding (if any) keeps its store reference until
                // the interner retires it; the newcomer gets an internal id
                // nothing live can reference: the external id itself when
                // neither this engine nor any store sharer holds it under
                // a different class, a store-minted alias otherwise (the
                // store owns the sequence, so two engines sharing it can
                // never mint the same alias for different objects). The
                // sharer check matters after *local* retirement: another
                // shard's live entry for this id is exactly as untouchable
                // as a local one — inheriting its class would evaluate the
                // newcomer under the wrong class.
                let taken = self.registered.contains(&external)
                    || store.class_of(external).is_some_and(|held| held != class);
                let internal = if taken {
                    let alias = store.mint_alias();
                    self.aliases.insert(alias, external);
                    alias
                } else {
                    external
                };
                let actual = store.register(internal, class);
                debug_assert_eq!(actual, class, "fresh registrations are first writers");
                self.registered.insert(internal);
                let generation = self.next_generation;
                self.next_generation += 1;
                self.live.insert(
                    external,
                    LiveBinding {
                        internal,
                        class,
                        generation,
                    },
                );
                out.push(internal);
            }
        }
        self.pending = pending;
    }

    /// Applies tracker end-of-track events: the live bindings of the listed
    /// *external* identifiers are severed, so the next sighting of such an
    /// id — **even with the same class** — starts a new generation behind a
    /// fresh internal id instead of splicing into the ended generation's
    /// window states. This closes the same-class-recycle blind spot of
    /// epoch-only retirement: without end events, an id recycled at the
    /// same class *within* an epoch is indistinguishable from a bridged
    /// occlusion and re-binds to the old generation.
    ///
    /// The ended generation keeps its class-store reference and its alias
    /// translation (its states may still be live inside the window); both
    /// are reclaimed by [`retire`](Self::retire) once the interner reports
    /// the id dead at a compaction epoch.
    pub fn end_tracks(&mut self, ends: &[ObjectId]) {
        // Negative-control mutant: reintroduces the pre-PR-5 blind spot
        // where end-of-track events were ignored, so a same-class recycle
        // splices into the ended generation. Exists solely so the model
        // checker's mutant suite can prove it *catches* this class of bug;
        // never enabled by production or tier-1 builds. Runtime-toggled
        // (armed by default) so other mutants in the same test binary can
        // disarm it — its depth-2 counterexample shadows theirs otherwise.
        #[cfg(feature = "check-mutants")]
        if crate::mutants::end_tracks_noop() {
            return;
        }
        for external in ends {
            if self.live.remove(external).is_some() {
                self.tracks_ended += 1;
            }
        }
    }

    /// Applies a compaction epoch's retire set: every listed internal id
    /// releases its class-store reference and its binding/alias entries.
    /// Ids this lifecycle never registered are skipped (robustness).
    pub fn retire(&mut self, retired: &[ObjectId]) {
        if retired.is_empty() {
            return;
        }
        let mut store = self.store.write().unwrap_or_else(PoisonError::into_inner);
        for &internal in retired {
            if !self.registered.remove(&internal) {
                continue;
            }
            store.release(internal);
            let external = self.aliases.remove(&internal).unwrap_or(internal);
            if self
                .live
                .get(&external)
                .is_some_and(|binding| binding.internal == internal)
            {
                self.live.remove(&external);
            }
            self.retired_total += 1;
        }
    }

    /// Translates an internal identifier back to the external (tracker)
    /// identifier it stands for. Identity for non-alias ids.
    #[inline]
    pub fn external_of(&self, internal: ObjectId) -> ObjectId {
        if self.aliases.is_empty() {
            return internal;
        }
        self.aliases.get(&internal).copied().unwrap_or(internal)
    }

    /// Whether any live binding uses an alias internal id (i.e. whether
    /// result translation can be skipped).
    pub fn has_aliases(&self) -> bool {
        !self.aliases.is_empty()
    }

    /// The current binding of an external identifier, if live.
    pub fn binding_of(&self, external: ObjectId) -> Option<LiveBinding> {
        self.live.get(&external).copied()
    }

    /// Internal ids currently tracked (each holds one store reference).
    pub fn tracked_objects(&self) -> usize {
        self.registered.len()
    }

    /// The tracked internal ids as a sorted list. Introspection hook for
    /// the model checker: conformance replay compares this set against the
    /// model's (and against the interner's universe) after every action.
    pub fn registered_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.registered.iter().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The live alias translations as sorted `(alias internal, external)`
    /// pairs. Introspection hook for the model checker: alias entries must
    /// appear exactly when a reuse generation is still tracked and vanish
    /// at its retirement.
    pub fn alias_entries(&self) -> Vec<(ObjectId, ObjectId)> {
        let mut entries: Vec<(ObjectId, ObjectId)> = self
            .aliases
            .iter()
            .map(|(&alias, &external)| (alias, external))
            .collect();
        entries.sort_unstable();
        entries
    }

    /// The live external → binding entries as a sorted list. Introspection
    /// hook shared by the model checker and the durability codec (which
    /// persists exactly this list plus [`registered_ids`](Self::registered_ids),
    /// [`alias_entries`](Self::alias_entries) and the three counters).
    pub fn live_bindings(&self) -> Vec<(ObjectId, LiveBinding)> {
        let mut entries: Vec<(ObjectId, LiveBinding)> = self
            .live
            .iter()
            .map(|(&external, &binding)| (external, binding))
            .collect();
        entries.sort_unstable_by_key(|&(external, _)| external);
        entries
    }

    /// Rebuilds a lifecycle from its persisted observable state around a
    /// (freshly restored) class store. The counters must be restored
    /// exactly: `next_generation` is the engine-wide monotone generation
    /// source, so resetting it would hand a recovered binding a generation
    /// some pre-crash binding already carries.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        store: SharedClassMap,
        live: impl IntoIterator<Item = (ObjectId, LiveBinding)>,
        registered: impl IntoIterator<Item = ObjectId>,
        aliases: impl IntoIterator<Item = (ObjectId, ObjectId)>,
        next_generation: u64,
        retired_total: u64,
        tracks_ended: u64,
    ) -> Self {
        ObjectLifecycle {
            store,
            live: live.into_iter().collect(),
            registered: registered.into_iter().collect(),
            aliases: aliases.into_iter().collect(),
            next_generation,
            retired_total,
            tracks_ended,
            pending: Vec::new(),
        }
    }

    /// Internal ids retired so far (lifetime counter).
    pub fn retired_total(&self) -> u64 {
        self.retired_total
    }

    /// Track-end events applied so far (only ends that actually severed a
    /// live binding count; unknown ids are ignored).
    pub fn tracks_ended(&self) -> u64 {
        self.tracks_ended
    }

    /// Generations started so far (first sights plus detected reuses).
    pub fn generations_started(&self) -> u64 {
        self.next_generation
    }

    /// Approximate bytes held by the lifecycle's maps.
    pub fn bytes(&self) -> usize {
        self.live.capacity() * std::mem::size_of::<(ObjectId, LiveBinding, u64)>()
            + self.registered.capacity() * std::mem::size_of::<(ObjectId, u64)>()
            + self.aliases.capacity() * std::mem::size_of::<(ObjectId, ObjectId, u64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, RwLock};
    use tvq_common::ClassStore;

    fn lifecycle() -> ObjectLifecycle {
        ObjectLifecycle::new(Arc::new(RwLock::new(ClassStore::new())))
    }

    fn relevant(classes: &[u16]) -> FxHashSet<ClassId> {
        classes.iter().map(|&c| ClassId(c)).collect()
    }

    fn resolve(lc: &mut ObjectLifecycle, detections: &[(u32, u16)]) -> Vec<ObjectId> {
        let detections: Vec<(ObjectId, ClassId)> = detections
            .iter()
            .map(|&(id, c)| (ObjectId(id), ClassId(c)))
            .collect();
        let mut out = Vec::new();
        lc.resolve_frame(&detections, &relevant(&[0, 1]), &mut out);
        out
    }

    #[test]
    fn first_generation_binds_to_itself() {
        let mut lc = lifecycle();
        assert_eq!(
            resolve(&mut lc, &[(5, 1), (7, 0)]),
            vec![ObjectId(5), ObjectId(7)]
        );
        assert_eq!(lc.tracked_objects(), 2);
        assert_eq!(lc.generations_started(), 2);
        assert!(!lc.has_aliases());
        // Steady state: same ids, same classes — no new generations.
        assert_eq!(
            resolve(&mut lc, &[(5, 1), (7, 0)]),
            vec![ObjectId(5), ObjectId(7)]
        );
        assert_eq!(lc.generations_started(), 2);
        let store = lc.store().read().unwrap();
        assert_eq!(store.class_of(ObjectId(5)), Some(ClassId(1)));
        assert_eq!(store.ref_count(ObjectId(5)), 1);
    }

    #[test]
    fn irrelevant_classes_are_skipped() {
        let mut lc = lifecycle();
        let detections = vec![(ObjectId(1), ClassId(9))];
        let mut out = Vec::new();
        lc.resolve_frame(&detections, &relevant(&[0, 1]), &mut out);
        assert!(out.is_empty());
        assert_eq!(lc.tracked_objects(), 0);
    }

    #[test]
    fn class_change_mints_an_alias_and_a_new_generation() {
        let mut lc = lifecycle();
        assert_eq!(resolve(&mut lc, &[(5, 1)]), vec![ObjectId(5)]);
        // Tracker reuses id 5 for a person: a new object behind a fresh
        // internal id, while the old registration stays until retirement.
        let reuse = resolve(&mut lc, &[(5, 0)]);
        assert_eq!(reuse.len(), 1);
        let alias = reuse[0];
        assert_ne!(alias, ObjectId(5));
        assert!(lc.has_aliases());
        assert_eq!(lc.external_of(alias), ObjectId(5));
        assert_eq!(lc.tracked_objects(), 2, "old + new generation");
        assert_eq!(lc.generations_started(), 2);
        assert_eq!(lc.binding_of(ObjectId(5)).unwrap().internal, alias);
        assert_eq!(lc.binding_of(ObjectId(5)).unwrap().class, ClassId(0));
        let store = lc.store().read().unwrap();
        assert_eq!(
            store.class_of(ObjectId(5)),
            Some(ClassId(1)),
            "old class intact"
        );
        assert_eq!(store.class_of(alias), Some(ClassId(0)));
        // Stable: the alias binding answers the fast path from now on.
        drop(store);
        assert_eq!(resolve(&mut lc, &[(5, 0)]), vec![alias]);
        assert_eq!(lc.generations_started(), 2);
    }

    #[test]
    fn retirement_unbinds_and_releases() {
        let mut lc = lifecycle();
        resolve(&mut lc, &[(5, 1)]);
        lc.retire(&[ObjectId(5)]);
        assert_eq!(lc.tracked_objects(), 0);
        assert_eq!(lc.retired_total(), 1);
        assert!(lc.binding_of(ObjectId(5)).is_none());
        assert!(lc.store().read().unwrap().is_empty());
        // Reappearance after retirement: a new generation, rebound to the
        // (now unreferenced) external id — even with a different class.
        assert_eq!(resolve(&mut lc, &[(5, 0)]), vec![ObjectId(5)]);
        assert_eq!(lc.generations_started(), 2);
        assert_eq!(
            lc.store().read().unwrap().class_of(ObjectId(5)),
            Some(ClassId(0)),
            "fresh class re-resolved, not the stale one"
        );
    }

    #[test]
    fn retiring_an_alias_keeps_the_original_binding_rules() {
        let mut lc = lifecycle();
        resolve(&mut lc, &[(5, 1)]); // gen 0: internal 5
        let alias = resolve(&mut lc, &[(5, 0)])[0]; // gen 1: alias
                                                    // The alias generation retires; internal 5 is still registered.
        lc.retire(&[alias]);
        assert!(!lc.has_aliases());
        assert!(lc.binding_of(ObjectId(5)).is_none());
        // Id 5 reappears as a car again: internal 5 is *still referenced*
        // (the gen-0 registration lives), so a fresh alias is minted rather
        // than splicing into gen 0.
        let again = resolve(&mut lc, &[(5, 1)]);
        assert_ne!(again[0], ObjectId(5));
        assert_ne!(again[0], alias, "alias ids are never reused");
        // Once gen 0 retires too, the external id is free to re-bind.
        lc.retire(&[ObjectId(5), again[0]]);
        assert_eq!(resolve(&mut lc, &[(5, 1)]), vec![ObjectId(5)]);
    }

    #[test]
    fn ended_track_rebinds_same_class_reappearance_to_a_new_generation() {
        let mut lc = lifecycle();
        assert_eq!(resolve(&mut lc, &[(5, 1)]), vec![ObjectId(5)]);
        lc.end_tracks(&[ObjectId(5)]);
        assert_eq!(lc.tracks_ended(), 1);
        assert!(lc.binding_of(ObjectId(5)).is_none());
        // The ended generation's store reference survives until epoch
        // retirement — its states may still be live inside the window.
        assert_eq!(lc.tracked_objects(), 1);
        assert_eq!(
            lc.store().read().unwrap().class_of(ObjectId(5)),
            Some(ClassId(1))
        );
        // Id 5 recycled for a *same-class* newcomer: without the end event
        // this would be indistinguishable from a bridged occlusion and
        // splice into gen 0; with it, a fresh alias generation starts.
        let again = resolve(&mut lc, &[(5, 1)]);
        assert_ne!(again[0], ObjectId(5));
        assert_eq!(lc.external_of(again[0]), ObjectId(5));
        assert_eq!(lc.generations_started(), 2);
        assert_eq!(lc.tracked_objects(), 2, "old + new generation");
        // Once both generations retire, the external id is free again.
        lc.retire(&[ObjectId(5), again[0]]);
        assert_eq!(resolve(&mut lc, &[(5, 1)]), vec![ObjectId(5)]);
    }

    #[test]
    fn end_tracks_ignores_unknown_ids() {
        let mut lc = lifecycle();
        resolve(&mut lc, &[(1, 0)]);
        lc.end_tracks(&[]);
        lc.end_tracks(&[ObjectId(99)]);
        assert_eq!(lc.tracks_ended(), 0);
        assert!(lc.binding_of(ObjectId(1)).is_some());
        // Double-ending is idempotent: the second event finds no binding.
        lc.end_tracks(&[ObjectId(1)]);
        lc.end_tracks(&[ObjectId(1)]);
        assert_eq!(lc.tracks_ended(), 1);
    }

    #[test]
    fn retire_ignores_foreign_ids_and_empty_sets() {
        let mut lc = lifecycle();
        resolve(&mut lc, &[(1, 0)]);
        lc.retire(&[]);
        lc.retire(&[ObjectId(99)]);
        assert_eq!(lc.retired_total(), 0);
        assert_eq!(lc.tracked_objects(), 1);
        assert!(lc.bytes() > 0);
    }

    #[test]
    fn aliases_are_unique_across_lifecycles_sharing_a_store() {
        // Two engines share one store (and a coherent global id space).
        // Each detects a class-change reuse on a *different* object; the
        // minted aliases must differ, or the first-writer-wins store would
        // cross-pollute classes between the feeds.
        let store: SharedClassMap = Arc::new(RwLock::new(ClassStore::new()));
        let mut a = ObjectLifecycle::new(Arc::clone(&store));
        let mut b = ObjectLifecycle::new(Arc::clone(&store));
        let mut out = Vec::new();
        a.resolve_frame(&[(ObjectId(1), ClassId(1))], &relevant(&[0, 1]), &mut out);
        b.resolve_frame(&[(ObjectId(2), ClassId(0))], &relevant(&[0, 1]), &mut out);
        out.clear();
        a.resolve_frame(&[(ObjectId(1), ClassId(0))], &relevant(&[0, 1]), &mut out);
        b.resolve_frame(&[(ObjectId(2), ClassId(1))], &relevant(&[0, 1]), &mut out);
        let (alias_a, alias_b) = (out[0], out[1]);
        assert_ne!(alias_a, alias_b, "store-minted aliases never collide");
        let store = store.read().unwrap();
        assert_eq!(store.class_of(alias_a), Some(ClassId(0)));
        assert_eq!(store.class_of(alias_b), Some(ClassId(1)));
    }

    #[test]
    fn cross_shard_recycle_with_conflicting_class_mints_an_alias() {
        // Feeds A and B share the store and both track global id 5 as a
        // car. A's epoch retires it locally; B's reference keeps the entry
        // live. When the tracker recycles id 5 as a person on A, A must
        // not rebind to the external id — B's live car entry is exactly as
        // untouchable as a local registration.
        let store: SharedClassMap = Arc::new(RwLock::new(ClassStore::new()));
        let mut a = ObjectLifecycle::new(Arc::clone(&store));
        let mut b = ObjectLifecycle::new(Arc::clone(&store));
        let mut out = Vec::new();
        a.resolve_frame(&[(ObjectId(5), ClassId(1))], &relevant(&[0, 1]), &mut out);
        b.resolve_frame(&[(ObjectId(5), ClassId(1))], &relevant(&[0, 1]), &mut out);
        a.retire(&[ObjectId(5)]);
        assert_eq!(
            store.read().unwrap().class_of(ObjectId(5)),
            Some(ClassId(1))
        );

        out.clear();
        a.resolve_frame(&[(ObjectId(5), ClassId(0))], &relevant(&[0, 1]), &mut out);
        let internal = out[0];
        assert_ne!(internal, ObjectId(5), "must not inherit B's live entry");
        assert_eq!(a.external_of(internal), ObjectId(5));
        let guard = store.read().unwrap();
        assert_eq!(guard.class_of(internal), Some(ClassId(0)));
        assert_eq!(guard.class_of(ObjectId(5)), Some(ClassId(1)), "B untouched");
    }

    #[test]
    fn mint_alias_skips_live_identifiers() {
        let mut store = ClassStore::new();
        // A stray external registered at the very top of the id space must
        // not be handed out again as an alias.
        store.register(ObjectId(u32::MAX), ClassId(0));
        let minted = store.mint_alias();
        assert_ne!(minted, ObjectId(u32::MAX));
        assert!(minted.raw() < u32::MAX);
    }

    #[test]
    fn shared_store_survives_one_engines_retirement() {
        let store: SharedClassMap = Arc::new(RwLock::new(ClassStore::new()));
        let mut a = ObjectLifecycle::new(Arc::clone(&store));
        let mut b = ObjectLifecycle::new(Arc::clone(&store));
        let detections = vec![(ObjectId(3), ClassId(1))];
        let mut out = Vec::new();
        a.resolve_frame(&detections, &relevant(&[1]), &mut out);
        b.resolve_frame(&detections, &relevant(&[1]), &mut out);
        assert_eq!(store.read().unwrap().ref_count(ObjectId(3)), 2);
        a.retire(&[ObjectId(3)]);
        assert_eq!(
            store.read().unwrap().class_of(ObjectId(3)),
            Some(ClassId(1)),
            "b's reference keeps the entry alive"
        );
        b.retire(&[ObjectId(3)]);
        assert!(store.read().unwrap().is_empty());
    }
}
