//! The Marked Frame Set (MFS) approach (Section 4.2 of the paper).
//!
//! MFS maintains the same flat table of states as NAIVE but additionally
//! tracks, per state, which frames are *key frames* (marked). Per the Frame
//! Marking Rules:
//!
//! 1. the frame that creates a state directly (the frame whose own object set
//!    equals the state's object set) is marked in that state;
//! 2. when the intersection of an existing state `s'` with the arriving
//!    frame equals the object set of a state `s`, the marked frames of `s'`
//!    (other than the arriving frame) are also marked in `s`.
//!
//! Theorem 1 shows the marked frames form a key frame set, so a state whose
//! marked frames have all expired is invalid (its object set is no longer an
//! MCOS of its frame set) and is pruned immediately — this is MFS's advantage
//! over NAIVE. Validity also makes result collection cheap: the Result State
//! Set is exactly the states that still carry a mark and meet the duration
//! threshold.
//!
//! MFS also supports the query-driven termination of Section 5.3 (the
//! `MFS_O` variant): a [`StatePruner`](crate::StatePruner) is consulted whenever a new state
//! would be created, and rejected object sets are remembered as *terminated*
//! so they are never materialised again while they remain hopeless.

use tvq_common::{
    Decoder, Encoder, Error, FrameId, FxHashMap, MarkedFrameSet, ObjectSet, RemapTable, Result,
    SetId, SetInterner, WindowSpec,
};

use crate::compaction::{CompactionOutcome, CompactionPolicy};
use crate::maintainer::{check_order, StateMaintainer};
use crate::metrics::MaintenanceMetrics;
use crate::prune::{PrunerVerdictCache, SharedPruner};
use crate::result_set::ResultStateSet;
use crate::snapshot;

/// The Marked Frame Set state maintainer.
///
/// All state maps are keyed by interned [`SetId`] handles: hashing, equality
/// and state lookup are O(1) integer operations, and the per-frame
/// intersection pass is answered from the interner's memo after the first
/// occurrence of each `(state, frame-set)` pair.
pub struct MfsMaintainer {
    spec: WindowSpec,
    interner: SetInterner,
    states: FxHashMap<SetId, MarkedFrameSet>,
    results: ResultStateSet,
    metrics: MaintenanceMetrics,
    pruner: Option<SharedPruner>,
    verdicts: PrunerVerdictCache,
    last_frame: Option<FrameId>,
    /// Pooled pass-1 appender list, reused so the steady-state frame loop
    /// (where every live state is contained in the arriving frame) does not
    /// allocate.
    appenders_scratch: Vec<SetId>,
}

impl std::fmt::Debug for MfsMaintainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MfsMaintainer")
            .field("spec", &self.spec)
            .field("live_states", &self.states.len())
            .field("terminated", &self.verdicts.terminated_len())
            .finish()
    }
}

impl MfsMaintainer {
    /// Creates an MFS maintainer for the given window specification, with a
    /// private interner (no class source).
    pub fn new(spec: WindowSpec) -> Self {
        MfsMaintainer::with_interner(spec, SetInterner::new())
    }

    /// Creates an MFS maintainer around a caller-provided interner (the
    /// engine wires one per feed, sharing its object → class map so result
    /// states carry precomputed class counts).
    pub fn with_interner(spec: WindowSpec, interner: SetInterner) -> Self {
        MfsMaintainer {
            spec,
            interner,
            states: FxHashMap::default(),
            results: ResultStateSet::new(),
            metrics: MaintenanceMetrics::new(),
            pruner: None,
            verdicts: PrunerVerdictCache::new(),
            last_frame: None,
            appenders_scratch: Vec::new(),
        }
    }

    /// Creates the `MFS_O` variant: new states are checked against the
    /// pruner and terminated when no query can ever be satisfied by them
    /// (Section 5.3).
    pub fn with_pruner(spec: WindowSpec, pruner: SharedPruner) -> Self {
        MfsMaintainer::with_pruner_and_interner(spec, pruner, SetInterner::new())
    }

    /// The `MFS_O` variant around a caller-provided interner.
    pub fn with_pruner_and_interner(
        spec: WindowSpec,
        pruner: SharedPruner,
        interner: SetInterner,
    ) -> Self {
        let mut maintainer = MfsMaintainer::with_interner(spec, interner);
        maintainer.pruner = Some(pruner);
        maintainer
    }

    /// Read access to the maintainer's interner (arena and memo statistics).
    pub fn interner(&self) -> &SetInterner {
        &self.interner
    }

    /// Re-keys every handle-held structure through a compaction epoch's
    /// remap table. Must be called with the table produced by compacting
    /// this maintainer's own interner against its own live handles —
    /// [`StateMaintainer::maybe_compact`] is the normal entry point.
    pub fn remap(&mut self, table: &RemapTable) {
        let states = std::mem::take(&mut self.states);
        self.states = states
            .into_iter()
            .filter_map(|(sid, frames)| table.remap(sid).map(|new| (new, frames)))
            .collect();
        self.verdicts.remap(table);
    }

    /// Exposes the live states (object set → marked frame set) for the
    /// worked-example assertions.
    pub fn states(&self) -> impl Iterator<Item = (&ObjectSet, &MarkedFrameSet)> {
        self.states
            .iter()
            .map(|(&sid, frames)| (self.interner.resolve(sid), frames))
    }

    fn is_terminated(&self, sid: SetId) -> bool {
        self.verdicts.is_terminated(sid)
    }

    /// Consults the pruner for a new object set via the shared per-handle
    /// verdict cache.
    fn terminate_if_hopeless(&mut self, sid: SetId) -> bool {
        let Some(pruner) = &self.pruner else {
            return false;
        };
        self.verdicts.judge(
            pruner.as_ref(),
            &self.interner,
            sid,
            &mut self.metrics.states_terminated,
        )
    }

    fn expire(&mut self, oldest: FrameId) {
        let mut pruned = 0u64;
        self.states.retain(|_, frames| {
            frames.expire_before(oldest);
            // A state with no marked frame left is invalid (Theorem 1) and is
            // dropped even though its frame set may still be non-empty.
            let keep = frames.has_marked();
            if !keep {
                pruned += 1;
            }
            keep
        });
        self.metrics.states_pruned += pruned;
    }

    fn process_frame(&mut self, frame: FrameId, objects: &ObjectSet) {
        if objects.is_empty() {
            return;
        }
        let frame_sid = self.interner.intern(objects);

        // Pass 1 (read-only): intersect every live state with the arriving
        // frame, recording which states are fully contained in the frame and
        // which object sets are derived, along with the parents' key frames
        // (snapshot, so that same-frame mark propagation stays deterministic).
        let mut appenders = std::mem::take(&mut self.appenders_scratch);
        appenders.clear();
        let mut derived: FxHashMap<SetId, Vec<(SetId, Vec<FrameId>)>> = FxHashMap::default();
        for (&sid, frames) in self.states.iter() {
            self.metrics.intersections += 1;
            let inter = self.interner.intersect(sid, frame_sid);
            if inter.is_empty_set() {
                continue;
            }
            if inter == sid {
                // Fully contained in the arriving frame: only the frame id
                // needs to be appended. A state never propagates marks onto
                // itself, so there is no need to record it as a derivation
                // source (this is the hot path on feeds with long-lived
                // objects).
                appenders.push(sid);
            } else {
                derived
                    .entry(inter)
                    .or_default()
                    .push((sid, frames.marked_frames().collect()));
            }
        }
        self.metrics.states_visited += self.states.len() as u64;

        // Pass 2a: append the arriving frame (unmarked) to fully contained
        // states.
        for sid in appenders.drain(..) {
            if let Some(frames) = self.states.get_mut(&sid) {
                frames.push(frame, false);
                self.metrics.frames_appended += 1;
            }
        }
        self.appenders_scratch = appenders;

        // Pass 2b: create states for intersections not yet materialised and
        // propagate marks (Frame Marking Rule 2) onto existing targets.
        for (&target, parents) in &derived {
            if let Some(existing) = self.states.get_mut(&target) {
                for &(parent_sid, ref parent_marks) in parents {
                    if parent_sid == target {
                        continue;
                    }
                    for &mark in parent_marks {
                        if mark != frame {
                            existing.mark(mark);
                        }
                    }
                }
                continue;
            }
            if self.is_terminated(target) {
                continue;
            }
            let mut frames = MarkedFrameSet::new();
            for &(parent_sid, _) in parents {
                if let Some(parent_frames) = self.states.get(&parent_sid) {
                    frames.merge_from(parent_frames);
                }
            }
            frames.push(frame, false);
            // Rule 2: marks are inherited from the parents' snapshots.
            for (_, parent_marks) in parents {
                for &mark in parent_marks {
                    if mark != frame {
                        frames.mark(mark);
                    }
                }
            }
            if self.terminate_if_hopeless(target) {
                continue;
            }
            self.states.insert(target, frames);
            self.metrics.states_created += 1;
        }

        // Pass 2c: the arriving frame's own object set becomes (or stays) a
        // state, and the arriving frame is its key frame (Rule 1).
        if !self.is_terminated(frame_sid) && !self.terminate_if_hopeless(frame_sid) {
            match self.states.get_mut(&frame_sid) {
                Some(frames) => {
                    frames.push(frame, true);
                    frames.mark(frame);
                }
                None => {
                    self.states
                        .insert(frame_sid, MarkedFrameSet::singleton(frame, true));
                    self.metrics.states_created += 1;
                }
            }
        }
    }

    fn collect_results(&mut self) {
        self.results.clear();
        for (&sid, frames) in &self.states {
            if frames.has_marked() && self.spec.satisfies_duration(frames.len()) {
                self.results.insert_with_counts(
                    self.interner.resolve(sid).clone(),
                    frames,
                    self.interner.cached_counts(sid),
                );
            }
        }
    }
}

impl StateMaintainer for MfsMaintainer {
    fn spec(&self) -> WindowSpec {
        self.spec
    }

    fn advance(&mut self, frame: FrameId, objects: &ObjectSet) -> Result<()> {
        check_order(self.last_frame, frame)?;
        self.last_frame = Some(frame);
        self.metrics.frames_processed += 1;

        self.expire(self.spec.oldest_valid(frame));
        self.process_frame(frame, objects);
        self.metrics.observe_live_states(self.states.len());
        self.metrics.observe_interner(&self.interner);
        self.collect_results();
        Ok(())
    }

    fn results(&self) -> &ResultStateSet {
        &self.results
    }

    fn metrics(&self) -> &MaintenanceMetrics {
        &self.metrics
    }

    fn live_states(&self) -> usize {
        self.states.len()
    }

    fn name(&self) -> &'static str {
        if self.pruner.is_some() {
            "MFS_O"
        } else {
            "MFS"
        }
    }

    fn maybe_compact(&mut self, policy: &CompactionPolicy) -> Option<CompactionOutcome> {
        if !policy.should_compact(self.states.len() + 1, self.interner.len()) {
            return None;
        }
        let live: Vec<SetId> = self.states.keys().copied().collect();
        let mut table = self.interner.compact(&live);
        self.remap(&table);
        self.metrics.compactions += 1;
        self.metrics.observe_interner(&self.interner);
        Some(CompactionOutcome {
            epoch: table.epoch(),
            retired_sets: table.retired(),
            retired_objects: table.take_retired_objects(),
        })
    }

    fn pruner_changed(&mut self) {
        self.verdicts.clear();
    }

    fn snapshot_state(&self, enc: &mut Encoder) -> Result<()> {
        snapshot::put_interner(enc, &self.interner);
        snapshot::put_opt_frame(enc, self.last_frame);
        // Handle order makes the byte stream deterministic across runs.
        let mut sids: Vec<SetId> = self.states.keys().copied().collect();
        sids.sort_unstable();
        enc.put_usize(sids.len());
        for sid in sids {
            snapshot::put_set_id(enc, sid);
            snapshot::put_frame_set(enc, &self.states[&sid]);
        }
        snapshot::put_metrics(enc, &self.metrics);
        Ok(())
    }

    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<()> {
        if !self.states.is_empty() || self.last_frame.is_some() {
            return Err(Error::Store(
                "restore_state requires a freshly built maintainer".into(),
            ));
        }
        snapshot::restore_interner(dec, &mut self.interner)?;
        self.last_frame = snapshot::take_opt_frame(dec)?;
        let states = dec.take_len()?;
        for _ in 0..states {
            let sid = snapshot::take_set_id(dec)?;
            let frames = snapshot::take_frame_set(dec)?;
            if sid.is_empty_set() || sid.raw() as usize >= self.interner.len() {
                return Err(Error::Corrupt(format!(
                    "MFS state references handle {} outside the restored arena",
                    sid.raw()
                )));
            }
            if self.states.insert(sid, frames).is_some() {
                return Err(Error::Corrupt(format!(
                    "duplicate MFS state for handle {}",
                    sid.raw()
                )));
            }
        }
        self.metrics = snapshot::take_metrics(dec)?;
        // Verdicts and results are rebuilt lazily: the next `advance`
        // re-collects results, and the pruner re-judges handles on demand.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::MinCardinalityPruner;
    use std::sync::Arc;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    /// Objects of the paper's running example: A=1, B=2, C=3, D=4, F=6.
    fn paper_frames() -> Vec<ObjectSet> {
        vec![
            set(&[2]),
            set(&[1, 2, 3]),
            set(&[1, 2, 4, 6]),
            set(&[1, 2, 3, 6]),
            set(&[1, 2, 4]),
        ]
    }

    fn states_at(m: &MfsMaintainer) -> Vec<(ObjectSet, Vec<(u64, bool)>)> {
        let mut v: Vec<(ObjectSet, Vec<(u64, bool)>)> = m
            .states()
            .map(|(s, f)| (s.clone(), f.iter().map(|(fr, mk)| (fr.raw(), mk)).collect()))
            .collect();
        v.sort();
        v
    }

    /// Table 2 of the paper: states with their marked frame sets, w=4, d=3.
    /// A `true` flag corresponds to a `*` mark in the table.
    #[test]
    fn table_2_marked_states_per_frame() {
        let spec = WindowSpec::new(4, 3).unwrap();
        let mut m = MfsMaintainer::new(spec);
        let frames = paper_frames();

        m.advance(FrameId(0), &frames[0]).unwrap();
        assert_eq!(states_at(&m), vec![(set(&[2]), vec![(0, true)])]);

        m.advance(FrameId(1), &frames[1]).unwrap();
        assert_eq!(
            states_at(&m),
            vec![
                (set(&[1, 2, 3]), vec![(1, true)]),
                (set(&[2]), vec![(0, true), (1, false)]),
            ]
        );

        m.advance(FrameId(2), &frames[2]).unwrap();
        assert_eq!(
            states_at(&m),
            vec![
                (set(&[1, 2]), vec![(1, true), (2, false)]),
                (set(&[1, 2, 3]), vec![(1, true)]),
                (set(&[1, 2, 4, 6]), vec![(2, true)]),
                (set(&[2]), vec![(0, true), (1, false), (2, false)]),
            ]
        );

        m.advance(FrameId(3), &frames[3]).unwrap();
        assert_eq!(
            states_at(&m),
            vec![
                (set(&[1, 2]), vec![(1, true), (2, false), (3, false)]),
                (set(&[1, 2, 3]), vec![(1, true), (3, false)]),
                (set(&[1, 2, 3, 6]), vec![(3, true)]),
                (set(&[1, 2, 4, 6]), vec![(2, true)]),
                (set(&[1, 2, 6]), vec![(2, true), (3, false)]),
                (
                    set(&[2]),
                    vec![(0, true), (1, false), (2, false), (3, false)]
                ),
            ]
        );

        m.advance(FrameId(4), &frames[4]).unwrap();
        // Frame 0 expires; {B}'s only key frame is gone, so {B} is pruned even
        // though it still appears in frames 1-4.
        //
        // Note on {AB}: the paper's Table 2 prints {*1,2,*3,4}. We additionally
        // mark frame 2 because Frame Marking Rule 2 also propagates the key
        // frame of {ABF} (whose intersection with the arriving frame {ABD} is
        // {AB}); the paper's table only propagates marks originating from
        // principal states. Both markings are sound: frame 2 satisfies the
        // suffix-intersection property (O2 ∩ O3 ∩ O4 = {AB}), so it can only
        // be marked while {AB} genuinely remains an MCOS.
        assert_eq!(
            states_at(&m),
            vec![
                (
                    set(&[1, 2]),
                    vec![(1, true), (2, true), (3, true), (4, false)]
                ),
                (set(&[1, 2, 3]), vec![(1, true), (3, false)]),
                (set(&[1, 2, 3, 6]), vec![(3, true)]),
                (set(&[1, 2, 4]), vec![(2, true), (4, true)]),
                (set(&[1, 2, 4, 6]), vec![(2, true)]),
                (set(&[1, 2, 6]), vec![(2, true), (3, false)]),
            ]
        );
    }

    /// The satisfied, valid result states must match Table 1's EXP column.
    #[test]
    fn table_2_expected_results() {
        let spec = WindowSpec::new(4, 3).unwrap();
        let mut m = MfsMaintainer::new(spec);
        let frames = paper_frames();

        m.advance(FrameId(0), &frames[0]).unwrap();
        assert!(m.results().is_empty());
        m.advance(FrameId(1), &frames[1]).unwrap();
        assert!(m.results().is_empty());
        m.advance(FrameId(2), &frames[2]).unwrap();
        assert_eq!(m.results().object_sets(), vec![set(&[2])]);
        m.advance(FrameId(3), &frames[3]).unwrap();
        assert_eq!(m.results().object_sets(), vec![set(&[1, 2]), set(&[2])]);
        m.advance(FrameId(4), &frames[4]).unwrap();
        assert_eq!(m.results().object_sets(), vec![set(&[1, 2])]);
    }

    #[test]
    fn invalid_states_are_pruned_earlier_than_naive() {
        // After frame 4 of the running example NAIVE still stores {B}
        // whereas MFS has dropped it: MFS keeps strictly fewer states.
        let spec = WindowSpec::new(4, 3).unwrap();
        let mut mfs = MfsMaintainer::new(spec);
        let mut naive = crate::naive::NaiveMaintainer::new(spec);
        for (i, frame) in paper_frames().into_iter().enumerate() {
            mfs.advance(FrameId(i as u64), &frame).unwrap();
            naive.advance(FrameId(i as u64), &frame).unwrap();
        }
        assert!(mfs.live_states() < naive.live_states());
    }

    #[test]
    fn termination_suppresses_small_states() {
        let spec = WindowSpec::new(4, 1).unwrap();
        let pruner = Arc::new(MinCardinalityPruner { min_objects: 2 });
        let mut m = MfsMaintainer::with_pruner(spec, pruner);
        m.advance(FrameId(0), &set(&[1])).unwrap();
        // The single-object state is terminated, not materialised.
        assert_eq!(m.live_states(), 0);
        assert_eq!(m.metrics().states_terminated, 1);
        m.advance(FrameId(1), &set(&[1, 2])).unwrap();
        assert_eq!(m.live_states(), 1);
        assert!(m.results().contains(&set(&[1, 2])));
        m.advance(FrameId(2), &set(&[2, 3])).unwrap();
        // {2} = {1,2} ∩ {2,3} would be a new state but is terminated.
        assert!(!m.results().contains(&set(&[2])));
        assert_eq!(m.name(), "MFS_O");
    }

    #[test]
    fn empty_frames_are_tolerated() {
        let spec = WindowSpec::new(3, 1).unwrap();
        let mut m = MfsMaintainer::new(spec);
        m.advance(FrameId(0), &ObjectSet::empty()).unwrap();
        m.advance(FrameId(1), &set(&[5])).unwrap();
        m.advance(FrameId(2), &ObjectSet::empty()).unwrap();
        assert!(m.results().contains(&set(&[5])));
    }

    #[test]
    fn rejects_out_of_order_frames() {
        let spec = WindowSpec::new(4, 1).unwrap();
        let mut m = MfsMaintainer::new(spec);
        m.advance(FrameId(1), &set(&[1])).unwrap();
        assert!(m.advance(FrameId(1), &set(&[1])).is_err());
        assert!(m.advance(FrameId(0), &set(&[1])).is_err());
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let spec = WindowSpec::new(4, 2).unwrap();
        let mut original = MfsMaintainer::new(spec);
        let patterns = paper_frames();
        for (i, frame) in patterns.iter().cycle().take(7).enumerate() {
            original.advance(FrameId(i as u64), frame).unwrap();
        }

        let mut enc = tvq_common::Encoder::new();
        original.snapshot_state(&mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut restored = MfsMaintainer::new(spec);
        let mut dec = tvq_common::Decoder::new(&bytes);
        restored.restore_state(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(restored.live_states(), original.live_states());
        assert_eq!(restored.metrics(), original.metrics());
        for (i, frame) in patterns.iter().cycle().take(20).enumerate().skip(7) {
            original.advance(FrameId(i as u64), frame).unwrap();
            restored.advance(FrameId(i as u64), frame).unwrap();
            assert_eq!(
                restored.results(),
                original.results(),
                "diverged at frame {i}"
            );
        }
        // Memo gauges drift (the intersection cache is not persisted); every
        // other counter must agree.
        assert_eq!(
            snapshot::scrub_cache_gauges(restored.metrics()),
            snapshot::scrub_cache_gauges(original.metrics())
        );
    }

    #[test]
    fn restore_rejects_used_maintainers_and_dangling_handles() {
        let spec = WindowSpec::new(4, 2).unwrap();
        let mut original = MfsMaintainer::new(spec);
        original.advance(FrameId(0), &set(&[1, 2])).unwrap();
        let mut enc = tvq_common::Encoder::new();
        original.snapshot_state(&mut enc).unwrap();
        let bytes = enc.into_bytes();

        // A maintainer that already advanced refuses to restore.
        let mut used = MfsMaintainer::new(spec);
        used.advance(FrameId(0), &set(&[9])).unwrap();
        assert!(used
            .restore_state(&mut tvq_common::Decoder::new(&bytes))
            .is_err());

        // A state entry pointing outside the arena is corrupt, not a panic.
        let mut enc = tvq_common::Encoder::new();
        snapshot::put_interner(&mut enc, original.interner());
        snapshot::put_opt_frame(&mut enc, Some(FrameId(0)));
        enc.put_usize(1);
        enc.put_u32(77); // dangling handle
        snapshot::put_frame_set(&mut enc, &MarkedFrameSet::singleton(FrameId(0), true));
        snapshot::put_metrics(&mut enc, original.metrics());
        let bytes = enc.into_bytes();
        let mut fresh = MfsMaintainer::new(spec);
        let err = fresh
            .restore_state(&mut tvq_common::Decoder::new(&bytes))
            .unwrap_err();
        assert!(matches!(err, tvq_common::Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn recreated_states_recover_their_frame_sets() {
        // {1,2} becomes invalid (superset {1,2,3} shares its frame set), is
        // pruned, and is later recreated when it becomes an MCOS again; its
        // frame set must cover all frames where {1,2} co-occurs.
        let spec = WindowSpec::new(6, 1).unwrap();
        let mut m = MfsMaintainer::new(spec);
        m.advance(FrameId(0), &set(&[1, 2, 3])).unwrap();
        m.advance(FrameId(1), &set(&[1, 2, 3])).unwrap();
        m.advance(FrameId(2), &set(&[1, 2, 4])).unwrap();
        let frames = m.results().frames_of(&set(&[1, 2])).unwrap();
        assert_eq!(frames, &[FrameId(0), FrameId(1), FrameId(2)]);
    }
}
