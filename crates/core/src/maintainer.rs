//! The [`StateMaintainer`] abstraction.
//!
//! The three MCOS-generation strategies of the paper (NAIVE, MFS, SSG) share
//! one streaming interface: frames are pushed in order and, after every
//! frame, the maintainer exposes the Result State Set of the current window.
//! The engine, the benchmarks and the differential tests are all written
//! against this trait so the strategies are interchangeable.

use tvq_common::{Decoder, Encoder, Error, FrameId, ObjectSet, Result, SetInterner, WindowSpec};

use crate::compaction::{CompactionOutcome, CompactionPolicy};
use crate::metrics::MaintenanceMetrics;
use crate::mfs::MfsMaintainer;
use crate::naive::NaiveMaintainer;
use crate::prune::SharedPruner;
use crate::reference::ReferenceMaintainer;
use crate::result_set::ResultStateSet;
use crate::ssg::SsgMaintainer;

/// Streaming interface of an MCOS generation strategy.
///
/// `Send` is a supertrait so a boxed maintainer (and the engine that owns
/// it) can live behind a mutex shared across server connection threads;
/// every production maintainer is plain owned data plus `Arc`s already.
pub trait StateMaintainer: Send {
    /// The window specification the maintainer was configured with.
    fn spec(&self) -> WindowSpec;

    /// Processes the next frame of the feed. Frames must arrive with strictly
    /// increasing identifiers; the maintainer slides its window accordingly.
    fn advance(&mut self, frame: FrameId, objects: &ObjectSet) -> Result<()>;

    /// The satisfied, valid states (MCOS + frame sets) of the window ending
    /// at the most recently processed frame.
    fn results(&self) -> &ResultStateSet;

    /// Work counters accumulated so far.
    fn metrics(&self) -> &MaintenanceMetrics;

    /// Number of states currently materialised.
    fn live_states(&self) -> usize;

    /// Human-readable strategy name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// Gives the maintainer a chance to compact its interner arena between
    /// frames. Implementations count their live handles, consult the
    /// policy, and — when it agrees — run a compaction epoch
    /// ([`SetInterner::compact`]) and re-key every handle-keyed structure
    /// through the remap table. Returns the epoch's
    /// [`CompactionOutcome`] (carrying the retired-object set the engine
    /// layer propagates to its object lifecycle) when an epoch ran, `None`
    /// otherwise.
    ///
    /// Compaction is semantically invisible: results and states are
    /// identical with or without it. The default does nothing (the
    /// brute-force reference oracle holds no handles).
    fn maybe_compact(&mut self, policy: &CompactionPolicy) -> Option<CompactionOutcome> {
        let _ = policy;
        None
    }

    /// Notifies the maintainer that its pruner's *decision function*
    /// changed (the engine swapped the query catalog behind a live pruner
    /// handle). Pruning maintainers drop their cached verdicts so every
    /// handle is re-judged under the new catalog; the default does nothing
    /// (NAIVE and the reference oracle never cache verdicts).
    fn pruner_changed(&mut self) {}

    /// Serializes the maintainer's complete between-frames state (interner
    /// arena, state tables, last frame, metrics) so the durability layer
    /// can persist it inside an epoch snapshot. Restoring the bytes via
    /// [`restore_state`](Self::restore_state) into a freshly built
    /// maintainer of the same kind (same spec, pruner and interner wiring)
    /// yields identical results for every subsequent frame.
    ///
    /// Pruner verdict caches are *not* serialized — verdicts are
    /// re-derivable under the live catalog, so only the
    /// `states_terminated` counter may drift after recovery. The default
    /// errors: the brute-force reference oracle is not durable.
    fn snapshot_state(&self, enc: &mut Encoder) -> Result<()> {
        let _ = enc;
        Err(Error::Store(format!(
            "the {} maintainer does not support snapshots",
            self.name()
        )))
    }

    /// Rebuilds the maintainer's state from bytes produced by
    /// [`snapshot_state`](Self::snapshot_state). Must be called on a
    /// freshly built maintainer (nothing advanced, nothing interned); the
    /// default errors, mirroring `snapshot_state`.
    fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<()> {
        let _ = dec;
        Err(Error::Store(format!(
            "the {} maintainer does not support snapshots",
            self.name()
        )))
    }
}

/// Helper shared by the maintainers: validates frame ordering.
pub(crate) fn check_order(last: Option<FrameId>, next: FrameId) -> Result<()> {
    if let Some(last) = last {
        if next <= last {
            return Err(Error::OutOfOrderFrame {
                last: last.raw(),
                got: next.raw(),
            });
        }
    }
    Ok(())
}

/// The MCOS-generation strategies available in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaintainerKind {
    /// The NAIVE baseline of Section 6.2.
    Naive,
    /// The Marked Frame Set approach of Section 4.2.
    Mfs,
    /// The Strict State Graph approach of Section 4.3.
    Ssg,
    /// The brute-force reference oracle (exponential; tests and tiny windows
    /// only).
    Reference,
}

impl MaintainerKind {
    /// All production strategies (excludes the reference oracle).
    pub const PRODUCTION: [MaintainerKind; 3] = [
        MaintainerKind::Naive,
        MaintainerKind::Mfs,
        MaintainerKind::Ssg,
    ];

    /// Stable one-byte tag identifying the strategy in persistent
    /// artifacts. Never renumber: snapshots written by older builds decode
    /// through these values.
    pub fn codec_tag(&self) -> u8 {
        match self {
            MaintainerKind::Naive => 0,
            MaintainerKind::Mfs => 1,
            MaintainerKind::Ssg => 2,
            MaintainerKind::Reference => 3,
        }
    }

    /// Resolves a [`codec_tag`](Self::codec_tag) back to the strategy,
    /// rejecting unknown tags with a clean codec error.
    pub fn from_codec_tag(tag: u8) -> Result<Self> {
        match tag {
            0 => Ok(MaintainerKind::Naive),
            1 => Ok(MaintainerKind::Mfs),
            2 => Ok(MaintainerKind::Ssg),
            3 => Ok(MaintainerKind::Reference),
            other => Err(Error::Codec(format!("unknown maintainer tag {other}"))),
        }
    }

    /// The strategy's display name, matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            MaintainerKind::Naive => "NAIVE",
            MaintainerKind::Mfs => "MFS",
            MaintainerKind::Ssg => "SSG",
            MaintainerKind::Reference => "REFERENCE",
        }
    }

    /// Builds a maintainer of this kind (private interner, no pruner).
    pub fn build(&self, spec: WindowSpec) -> Box<dyn StateMaintainer> {
        self.build_with_options(spec, None, SetInterner::new())
    }

    /// Builds a maintainer with a query-driven pruner attached (the `_O`
    /// variants of Section 5.3). The reference and NAIVE strategies ignore
    /// the pruner, mirroring the paper which only defines MFS_O and SSG_O.
    pub fn build_with_pruner(
        &self,
        spec: WindowSpec,
        pruner: SharedPruner,
    ) -> Box<dyn StateMaintainer> {
        self.build_with_options(spec, Some(pruner), SetInterner::new())
    }

    /// Builds a maintainer around a caller-provided interner and an optional
    /// pruner. This is how the engine wires one interner per feed (sharing
    /// its object → class map, so result states carry precomputed class
    /// counts). The reference oracle ignores both — it recomputes windows
    /// from first principles and exists to pin down semantics, not speed.
    pub fn build_with_options(
        &self,
        spec: WindowSpec,
        pruner: Option<SharedPruner>,
        interner: SetInterner,
    ) -> Box<dyn StateMaintainer> {
        match (self, pruner) {
            (MaintainerKind::Naive, _) => Box::new(NaiveMaintainer::with_interner(spec, interner)),
            (MaintainerKind::Mfs, None) => Box::new(MfsMaintainer::with_interner(spec, interner)),
            (MaintainerKind::Mfs, Some(pruner)) => Box::new(
                MfsMaintainer::with_pruner_and_interner(spec, pruner, interner),
            ),
            (MaintainerKind::Ssg, None) => Box::new(SsgMaintainer::with_interner(spec, interner)),
            (MaintainerKind::Ssg, Some(pruner)) => Box::new(
                SsgMaintainer::with_pruner_and_interner(spec, pruner, interner),
            ),
            (MaintainerKind::Reference, _) => Box::new(ReferenceMaintainer::new(spec)),
        }
    }
}

impl std::fmt::Display for MaintainerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_check_rejects_non_increasing_frames() {
        assert!(check_order(None, FrameId(0)).is_ok());
        assert!(check_order(Some(FrameId(3)), FrameId(4)).is_ok());
        assert!(check_order(Some(FrameId(3)), FrameId(3)).is_err());
        assert!(check_order(Some(FrameId(3)), FrameId(1)).is_err());
    }

    #[test]
    fn kinds_report_paper_names() {
        assert_eq!(MaintainerKind::Naive.to_string(), "NAIVE");
        assert_eq!(MaintainerKind::Mfs.to_string(), "MFS");
        assert_eq!(MaintainerKind::Ssg.to_string(), "SSG");
    }

    #[test]
    fn codec_tags_round_trip_and_reject_unknowns() {
        for kind in [
            MaintainerKind::Naive,
            MaintainerKind::Mfs,
            MaintainerKind::Ssg,
            MaintainerKind::Reference,
        ] {
            assert_eq!(
                MaintainerKind::from_codec_tag(kind.codec_tag()).unwrap(),
                kind
            );
        }
        assert!(MaintainerKind::from_codec_tag(99).is_err());
    }

    #[test]
    fn reference_maintainer_is_not_durable() {
        let spec = WindowSpec::new(4, 2).unwrap();
        let mut maintainer = MaintainerKind::Reference.build(spec);
        let mut enc = Encoder::new();
        assert!(maintainer.snapshot_state(&mut enc).is_err());
        assert!(maintainer.restore_state(&mut Decoder::new(&[])).is_err());
    }

    #[test]
    fn factory_builds_each_kind() {
        let spec = WindowSpec::new(4, 2).unwrap();
        for kind in [
            MaintainerKind::Naive,
            MaintainerKind::Mfs,
            MaintainerKind::Ssg,
            MaintainerKind::Reference,
        ] {
            let maintainer = kind.build(spec);
            assert_eq!(maintainer.spec(), spec);
            assert_eq!(maintainer.live_states(), 0);
            assert_eq!(maintainer.name(), kind.name());
        }
    }
}
