//! Crate-wide error and result types.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the temporal video query crates.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A window or duration specification is inconsistent
    /// (for example `duration > window` or a zero-length window).
    InvalidWindow {
        /// Window length in frames.
        window: usize,
        /// Duration threshold in frames.
        duration: usize,
    },
    /// A frame arrived out of order: frame identifiers must be presented to
    /// the maintainers in strictly increasing order.
    OutOfOrderFrame {
        /// The most recently accepted frame.
        last: u64,
        /// The frame that violated the ordering.
        got: u64,
    },
    /// A class label was used that is not registered in the [`crate::ClassRegistry`].
    UnknownClass(String),
    /// A query references a class identifier that does not exist.
    UnknownClassId(u16),
    /// A textual query could not be parsed.
    QueryParse {
        /// Human-readable description of the parse failure.
        message: String,
        /// Byte offset in the input at which the failure was detected.
        position: usize,
    },
    /// A CSV record for a video relation was malformed.
    MalformedRecord {
        /// 1-based line number of the bad record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Wrapper around I/O errors raised while reading or writing relations.
    Io(std::io::Error),
    /// A configuration value was outside its legal range.
    InvalidConfig(String),
    /// A persistent artifact (WAL record, snapshot) could not be decoded:
    /// truncated input, malformed field, or a codec version this build does
    /// not understand.
    Codec(String),
    /// A persistent artifact failed its integrity check (CRC mismatch,
    /// impossible length): the bytes on disk are not what was written.
    /// Corrupt records are reported, never silently replayed.
    Corrupt(String),
    /// The durability store could not be opened or operated (directory
    /// missing, lock held by another live engine, no usable snapshot).
    Store(String),
    /// A shard worker of the multi-feed engine terminated unexpectedly
    /// (panicked or dropped its channel), so a batch could not complete.
    ShardLost {
        /// Index of the lost worker within the engine's worker pool.
        worker: usize,
        /// Frames that were queued to (or still owed by) the lost worker
        /// when the failure was detected — the shard's queue depth at the
        /// point of loss, so operators can tell an idle-death from a
        /// worker that died mid-backlog.
        queue_depth: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidWindow { window, duration } => write!(
                f,
                "invalid window specification: duration {duration} must be between 0 and window {window}, and window must be positive"
            ),
            Error::OutOfOrderFrame { last, got } => write!(
                f,
                "frame {got} arrived out of order (last accepted frame was {last})"
            ),
            Error::UnknownClass(label) => write!(f, "unknown class label {label:?}"),
            Error::UnknownClassId(id) => write!(f, "unknown class id {id}"),
            Error::QueryParse { message, position } => {
                write!(f, "query parse error at byte {position}: {message}")
            }
            Error::MalformedRecord { line, message } => {
                write!(f, "malformed relation record on line {line}: {message}")
            }
            Error::Io(err) => write!(f, "I/O error: {err}"),
            Error::InvalidConfig(message) => write!(f, "invalid configuration: {message}"),
            Error::Codec(message) => write!(f, "codec error: {message}"),
            Error::Corrupt(message) => write!(f, "corrupt store data: {message}"),
            Error::Store(message) => write!(f, "store error: {message}"),
            Error::ShardLost {
                worker,
                queue_depth,
            } => {
                write!(
                    f,
                    "multi-feed shard worker {worker} terminated unexpectedly \
                     ({queue_depth} frame(s) queued to it)"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InvalidWindow {
            window: 10,
            duration: 20,
        };
        let msg = e.to_string();
        assert!(msg.contains("20"));
        assert!(msg.contains("10"));

        let e = Error::OutOfOrderFrame { last: 7, got: 3 };
        assert!(e.to_string().contains("out of order"));

        let e = Error::UnknownClass("bicycle".into());
        assert!(e.to_string().contains("bicycle"));

        let e = Error::QueryParse {
            message: "expected integer".into(),
            position: 14,
        };
        assert!(e.to_string().contains("14"));

        let e = Error::MalformedRecord {
            line: 3,
            message: "missing class column".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = Error::ShardLost {
            worker: 2,
            queue_depth: 17,
        };
        assert!(e.to_string().contains("worker 2"));
        assert!(
            e.to_string().contains("17 frame(s)"),
            "the error names the lost shard's queue depth: {e}"
        );
    }

    #[test]
    fn io_errors_preserve_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err = Error::from(io);
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn non_io_errors_have_no_source() {
        let err = Error::UnknownClassId(9);
        assert!(std::error::Error::source(&err).is_none());
    }
}
