//! Marked frame sets (Section 4.2.3 of the paper).
//!
//! Each state in the MCOS generation layer carries the set of window frames
//! in which its object set co-occurs. A subset of those frames — the *key
//! frames* — determines whether the state's object set is still a maximum
//! co-occurrence object set: once every key frame has expired from the
//! window the state is invalid and can be pruned (Theorem 1).
//!
//! [`MarkedFrameSet`] stores the frames of one state in arrival order,
//! together with a mark bit per frame, and maintains counters so that
//! validity (`has_marked`) and satisfaction (`len() >= d`) are O(1) and
//! window expiry is O(number of expired frames).

use std::collections::VecDeque;
use std::fmt;

use crate::ids::FrameId;

/// A set of frame identifiers in increasing order, each optionally *marked*
/// as a key frame.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct MarkedFrameSet {
    frames: VecDeque<(FrameId, bool)>,
    marked: usize,
}

impl MarkedFrameSet {
    /// Creates an empty frame set.
    pub fn new() -> Self {
        MarkedFrameSet {
            frames: VecDeque::new(),
            marked: 0,
        }
    }

    /// Creates a frame set containing a single frame.
    pub fn singleton(frame: FrameId, marked: bool) -> Self {
        let mut set = MarkedFrameSet::new();
        set.push(frame, marked);
        set
    }

    /// Number of frames in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the set contains no frames.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Number of marked (key) frames.
    #[inline]
    pub fn marked_count(&self) -> usize {
        self.marked
    }

    /// Whether at least one frame is marked — per Theorem 1 / Theorem 4 this
    /// is exactly the condition under which the owning state is valid.
    #[inline]
    pub fn has_marked(&self) -> bool {
        self.marked > 0
    }

    /// The earliest frame in the set, if any.
    pub fn first(&self) -> Option<FrameId> {
        self.frames.front().map(|&(f, _)| f)
    }

    /// The latest frame in the set, if any.
    pub fn last(&self) -> Option<FrameId> {
        self.frames.back().map(|&(f, _)| f)
    }

    /// Whether `frame` is a member of the set.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.position(frame).is_some()
    }

    /// Whether `frame` is a member and marked.
    pub fn is_marked(&self, frame: FrameId) -> bool {
        self.position(frame)
            .map(|idx| self.frames[idx].1)
            .unwrap_or(false)
    }

    fn position(&self, frame: FrameId) -> Option<usize> {
        // Frames are stored in increasing order; binary search over the deque.
        let (front, back) = self.frames.as_slices();
        if let Ok(idx) = front.binary_search_by_key(&frame, |&(f, _)| f) {
            return Some(idx);
        }
        if let Ok(idx) = back.binary_search_by_key(&frame, |&(f, _)| f) {
            return Some(front.len() + idx);
        }
        None
    }

    /// Appends a frame. Frames must be appended in strictly increasing order;
    /// appending a frame already at the tail merges the mark flags (a frame
    /// stays marked once marked).
    ///
    /// # Panics
    ///
    /// Panics (debug assertions only) if `frame` is smaller than the current
    /// last frame.
    pub fn push(&mut self, frame: FrameId, marked: bool) {
        if let Some(&(last, last_marked)) = self.frames.back() {
            debug_assert!(
                frame >= last,
                "frames must be appended in increasing order ({last} then {frame})"
            );
            if frame == last {
                if marked && !last_marked {
                    self.frames.back_mut().expect("non-empty").1 = true;
                    self.marked += 1;
                }
                return;
            }
        }
        self.frames.push_back((frame, marked));
        if marked {
            self.marked += 1;
        }
    }

    /// Marks an existing frame as a key frame. Returns `true` when the frame
    /// is present (whether or not it was already marked).
    pub fn mark(&mut self, frame: FrameId) -> bool {
        match self.position(frame) {
            Some(idx) => {
                if !self.frames[idx].1 {
                    self.frames[idx].1 = true;
                    self.marked += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Removes every frame strictly older than `oldest_valid`, returning how
    /// many frames were removed.
    pub fn expire_before(&mut self, oldest_valid: FrameId) -> usize {
        let mut removed = 0;
        while let Some(&(frame, marked)) = self.frames.front() {
            if frame >= oldest_valid {
                break;
            }
            if marked {
                self.marked -= 1;
            }
            self.frames.pop_front();
            removed += 1;
        }
        removed
    }

    /// Iterates over `(frame, marked)` pairs in increasing frame order.
    pub fn iter(&self) -> impl Iterator<Item = (FrameId, bool)> + '_ {
        self.frames.iter().copied()
    }

    /// Iterates over the frame identifiers only.
    pub fn frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.frames.iter().map(|&(f, _)| f)
    }

    /// Iterates over the marked (key) frames only.
    pub fn marked_frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.frames
            .iter()
            .filter_map(|&(f, m)| if m { Some(f) } else { None })
    }

    /// Returns `true` when merging `other` into `self` would change nothing:
    /// every frame of `other` is already present, with its mark subsumed.
    /// Linear scan, no allocation — this is the dominant case in the SSG
    /// traversal, where a child's frame set usually already covers the
    /// parent frames being propagated.
    fn subsumes(&self, other: &MarkedFrameSet) -> bool {
        if other.len() > self.len() {
            return false;
        }
        match (self.first(), self.last(), other.first(), other.last()) {
            (Some(first), Some(last), Some(other_first), Some(other_last)) => {
                if other_first < first || other_last > last {
                    return false;
                }
            }
            _ => return other.is_empty(),
        }
        let mut own = self.frames.iter();
        'outer: for &(frame, marked) in other.frames.iter() {
            for &(own_frame, own_marked) in own.by_ref() {
                if own_frame == frame {
                    if marked && !own_marked {
                        return false;
                    }
                    continue 'outer;
                }
                if own_frame > frame {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Whether the set covers every frame between its first and last member
    /// (no gaps). O(1) from the counters.
    #[inline]
    fn is_contiguous(&self) -> bool {
        match (self.first(), self.last()) {
            (Some(first), Some(last)) => last.raw() - first.raw() + 1 == self.len() as u64,
            _ => true,
        }
    }

    /// Merges the frames (and marks) of `other` into `self`.
    ///
    /// This implements the `merge(Fs, Fns)` operation used by the State
    /// Marking Procedure: the result contains the union of both frame sets,
    /// and a frame is marked if it is marked in either input.
    pub fn merge_from(&mut self, other: &MarkedFrameSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        // Gap-free fast path: when `self` covers a contiguous frame range
        // enclosing `other`, every frame of `other` is already present and
        // the merge reduces to copying marks — the dominant case for
        // long-lived states that co-occur every frame.
        if self.is_contiguous() && other.first() >= self.first() && other.last() <= self.last() {
            if other.marked > 0 {
                for &(frame, marked) in other.frames.iter() {
                    if marked {
                        self.mark(frame);
                    }
                }
            }
            return;
        }
        if self.subsumes(other) {
            return;
        }
        let mut merged: VecDeque<(FrameId, bool)> =
            VecDeque::with_capacity(self.len() + other.len());
        let mut marked = 0usize;
        let mut a = self.frames.iter().copied().peekable();
        let mut b = other.frames.iter().copied().peekable();
        loop {
            let next = match (a.peek().copied(), b.peek().copied()) {
                (None, None) => break,
                (Some(_), None) => a.next().expect("peeked"),
                (None, Some(_)) => b.next().expect("peeked"),
                (Some((fa, ma)), Some((fb, mb))) => {
                    if fa < fb {
                        a.next().expect("peeked")
                    } else if fb < fa {
                        b.next().expect("peeked")
                    } else {
                        a.next();
                        b.next();
                        (fa, ma || mb)
                    }
                }
            };
            if next.1 {
                marked += 1;
            }
            merged.push_back(next);
        }
        self.frames = merged;
        self.marked = marked;
    }

    /// Copies every mark of `other` onto the corresponding frames of `self`
    /// (frames of `other` absent from `self` are ignored). Optionally skips
    /// one frame, which implements the "∀ f ≠ i" clause of Frame Marking
    /// Rule 2.
    pub fn copy_marks_from(&mut self, other: &MarkedFrameSet, skip: Option<FrameId>) {
        for frame in other.marked_frames() {
            if Some(frame) == skip {
                continue;
            }
            self.mark(frame);
        }
    }

    /// Returns the frames as a plain vector (useful for assertions and
    /// result reporting).
    pub fn to_frame_vec(&self) -> Vec<FrameId> {
        self.frames().collect()
    }
}

impl fmt::Debug for MarkedFrameSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (idx, (frame, marked)) in self.frames.iter().enumerate() {
            if idx > 0 {
                write!(f, ",")?;
            }
            if *marked {
                write!(f, "*")?;
            }
            write!(f, "{}", frame.raw())?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(FrameId, bool)> for MarkedFrameSet {
    fn from_iter<T: IntoIterator<Item = (FrameId, bool)>>(iter: T) -> Self {
        let mut set = MarkedFrameSet::new();
        for (frame, marked) in iter {
            set.push(frame, marked);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(frames: &[(u64, bool)]) -> MarkedFrameSet {
        frames
            .iter()
            .map(|&(f, m)| (FrameId(f), m))
            .collect::<MarkedFrameSet>()
    }

    #[test]
    fn push_and_counters() {
        let mut s = MarkedFrameSet::new();
        assert!(s.is_empty());
        s.push(FrameId(0), true);
        s.push(FrameId(1), false);
        s.push(FrameId(2), true);
        assert_eq!(s.len(), 3);
        assert_eq!(s.marked_count(), 2);
        assert!(s.has_marked());
        assert_eq!(s.first(), Some(FrameId(0)));
        assert_eq!(s.last(), Some(FrameId(2)));
    }

    #[test]
    fn duplicate_push_merges_marks() {
        let mut s = MarkedFrameSet::new();
        s.push(FrameId(4), false);
        s.push(FrameId(4), true);
        assert_eq!(s.len(), 1);
        assert_eq!(s.marked_count(), 1);
        s.push(FrameId(4), false);
        assert_eq!(s.marked_count(), 1);
    }

    #[test]
    fn mark_existing_frame() {
        let mut s = fs(&[(1, false), (2, false), (3, false)]);
        assert!(!s.has_marked());
        assert!(s.mark(FrameId(2)));
        assert!(s.is_marked(FrameId(2)));
        assert!(!s.is_marked(FrameId(1)));
        assert_eq!(s.marked_count(), 1);
        // Re-marking is idempotent.
        assert!(s.mark(FrameId(2)));
        assert_eq!(s.marked_count(), 1);
        // Marking an absent frame reports false.
        assert!(!s.mark(FrameId(9)));
    }

    #[test]
    fn expiry_removes_old_frames_and_marks() {
        let mut s = fs(&[(0, true), (1, false), (2, true), (3, false)]);
        let removed = s.expire_before(FrameId(2));
        assert_eq!(removed, 2);
        assert_eq!(s.to_frame_vec(), vec![FrameId(2), FrameId(3)]);
        assert_eq!(s.marked_count(), 1);
        // Expiring before an older frame is a no-op.
        assert_eq!(s.expire_before(FrameId(1)), 0);
        // Expire everything.
        assert_eq!(s.expire_before(FrameId(100)), 2);
        assert!(s.is_empty());
        assert!(!s.has_marked());
    }

    #[test]
    fn merge_unions_frames_and_marks() {
        let mut a = fs(&[(1, true), (3, false)]);
        let b = fs(&[(2, true), (3, true), (4, false)]);
        a.merge_from(&b);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![
                (FrameId(1), true),
                (FrameId(2), true),
                (FrameId(3), true),
                (FrameId(4), false)
            ]
        );
        assert_eq!(a.marked_count(), 3);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = MarkedFrameSet::new();
        let b = fs(&[(5, true)]);
        a.merge_from(&b);
        assert_eq!(a, b);
        let mut c = fs(&[(1, false)]);
        c.merge_from(&MarkedFrameSet::new());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn copy_marks_respects_skip_and_membership() {
        let mut target = fs(&[(1, false), (2, false), (3, false)]);
        let source = fs(&[(1, true), (3, true), (9, true)]);
        target.copy_marks_from(&source, Some(FrameId(3)));
        assert!(target.is_marked(FrameId(1)));
        assert!(!target.is_marked(FrameId(3)));
        assert!(!target.contains(FrameId(9)));
    }

    #[test]
    fn debug_format_shows_marks() {
        let s = fs(&[(1, true), (2, false)]);
        assert_eq!(format!("{s:?}"), "{*1,2}");
    }

    #[test]
    fn contains_and_binary_search_across_deque_wrap() {
        // Exercise the two-slice binary search by forcing pops and pushes.
        let mut s = MarkedFrameSet::new();
        for f in 0..16u64 {
            s.push(FrameId(f), f % 3 == 0);
        }
        s.expire_before(FrameId(8));
        for f in 16..24u64 {
            s.push(FrameId(f), false);
        }
        for f in 8..24u64 {
            assert!(s.contains(FrameId(f)), "missing frame {f}");
        }
        assert!(!s.contains(FrameId(7)));
        assert!(!s.contains(FrameId(24)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Counters stay consistent with the stored data under arbitrary
        /// sequences of pushes, marks and expirations.
        #[test]
        fn counters_stay_consistent(ops in proptest::collection::vec((0u64..60, any::<bool>(), 0u8..3), 1..80)) {
            let mut s = MarkedFrameSet::new();
            let mut next_frame = 0u64;
            for (value, flag, op) in ops {
                match op {
                    0 => {
                        next_frame += value % 3;
                        s.push(FrameId(next_frame), flag);
                    }
                    1 => {
                        s.mark(FrameId(value));
                    }
                    _ => {
                        s.expire_before(FrameId(value));
                    }
                }
                let recomputed_marked = s.iter().filter(|&(_, m)| m).count();
                prop_assert_eq!(recomputed_marked, s.marked_count());
                prop_assert_eq!(s.iter().count(), s.len());
                // Frames stay strictly increasing.
                let frames: Vec<_> = s.frames().collect();
                prop_assert!(frames.windows(2).all(|w| w[0] < w[1]));
            }
        }

        /// Merging is equivalent to rebuilding from the union of both inputs.
        #[test]
        fn merge_is_union(a in proptest::collection::btree_map(0u64..40, any::<bool>(), 0..20),
                          b in proptest::collection::btree_map(0u64..40, any::<bool>(), 0..20)) {
            let sa: MarkedFrameSet = a.iter().map(|(&f, &m)| (FrameId(f), m)).collect();
            let sb: MarkedFrameSet = b.iter().map(|(&f, &m)| (FrameId(f), m)).collect();
            let mut merged = sa.clone();
            merged.merge_from(&sb);
            let mut expected = a.clone();
            for (f, m) in b {
                *expected.entry(f).or_insert(false) |= m;
            }
            let expected: MarkedFrameSet = expected.iter().map(|(&f, &m)| (FrameId(f), m)).collect();
            prop_assert_eq!(merged, expected);
        }
    }
}
