//! Word-parallel dense bitmaps over a growing object universe.
//!
//! The MCOS maintenance algorithms are chains of set intersections, subset
//! and disjointness tests over small object sets. The interner already makes
//! set *identity* O(1); this module makes the set *algebra* word-parallel:
//! every interned set is mirrored as a dense bitmap over the feed's object
//! universe, so an intersection count is a loop of `AND` + `count_ones` over
//! a handful of `u64` words instead of a branchy linear merge over sorted
//! slices.
//!
//! [`BitmapArena`] stores one fixed-stride bitmap per arena entry in a
//! single flat `Vec<u64>`:
//!
//! * the **stride** is the number of words per entry. All entries share it,
//!   so entry `i` occupies `words[i * stride .. (i + 1) * stride]` — no
//!   per-entry allocation, no pointer chasing, and the pairwise kernels
//!   below walk two contiguous word runs;
//! * the **universe** maps each observed `ObjectId` to a dense bit slot
//!   (owned by the [`SetInterner`](crate::SetInterner), which assigns slots
//!   first-seen). When a new slot exceeds the current stride the arena
//!   re-strides: every entry is copied into a wider layout (amortised —
//!   strides double);
//! * a compaction epoch rebuilds the arena from the live sets with a fresh,
//!   re-densified universe, which is what keeps long-running unbounded
//!   feeds bounded (see `SetInterner::compact`).
//!
//! The kernels treat the shorter entry as zero-padded: entries created
//! before a re-stride are always compared correctly against wider ones
//! because re-striding preserves content and all entries share one stride.

use crate::ids::ObjectId;

/// Bits per bitmap word.
const WORD_BITS: usize = u64::BITS as usize;

/// A flat arena of fixed-stride `u64` bitmaps, one per interned set.
///
/// Slots are assigned by the owning interner; this type only concerns
/// itself with the word-parallel kernels and the stride bookkeeping.
#[derive(Debug, Default, Clone)]
pub struct BitmapArena {
    /// All bitmaps, concatenated: entry `i` is `words[i*stride..(i+1)*stride]`.
    words: Vec<u64>,
    /// Words per entry (grows as the universe grows; never shrinks except
    /// through [`BitmapArena::clear`]).
    stride: usize,
    /// Number of entries pushed.
    entries: usize,
}

impl BitmapArena {
    /// Creates an empty arena (stride 1: a 64-object universe fits the
    /// common tracked-feed case without any re-stride).
    pub fn new() -> Self {
        BitmapArena {
            words: Vec::new(),
            stride: 1,
            entries: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the arena holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Words per entry.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Bytes held by the bitmap words.
    pub fn bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Removes every entry, resetting the stride (used by compaction, which
    /// rebuilds against a re-densified universe).
    pub fn clear(&mut self) {
        self.words.clear();
        self.words.shrink_to_fit();
        self.stride = 1;
        self.entries = 0;
    }

    /// Grows the stride so that bit `max_slot` fits, re-laying out every
    /// existing entry. No-op when the slot already fits.
    pub fn ensure_slot(&mut self, max_slot: u32) {
        let needed = max_slot as usize / WORD_BITS + 1;
        if needed <= self.stride {
            return;
        }
        // Double instead of fitting exactly so a steadily growing universe
        // re-strides O(log n) times.
        let new_stride = needed.max(self.stride * 2);
        let mut words = vec![0u64; self.entries * new_stride];
        for entry in 0..self.entries {
            let src = entry * self.stride;
            let dst = entry * new_stride;
            words[dst..dst + self.stride].copy_from_slice(&self.words[src..src + self.stride]);
        }
        self.words = words;
        self.stride = new_stride;
    }

    /// Appends one entry with the given bit slots set. Every slot must fit
    /// the current stride (callers run [`BitmapArena::ensure_slot`] first).
    pub fn push(&mut self, slots: impl IntoIterator<Item = u32>) {
        let base = self.words.len();
        self.words.resize(base + self.stride, 0);
        for slot in slots {
            let slot = slot as usize;
            debug_assert!(slot / WORD_BITS < self.stride, "slot beyond stride");
            self.words[base + slot / WORD_BITS] |= 1u64 << (slot % WORD_BITS);
        }
        self.entries += 1;
    }

    /// The words of entry `index`.
    #[inline]
    pub fn entry(&self, index: usize) -> &[u64] {
        &self.words[index * self.stride..(index + 1) * self.stride]
    }

    /// `|a ∩ b|` — one AND + popcount per word pair.
    ///
    /// The loop is unrolled 4-wide with independent accumulators: the four
    /// popcounts per chunk have no data dependency on each other, so the
    /// autovectorizer can issue wide AND + popcount over whole chunks and
    /// the scalar fallback still overlaps four dependency chains instead of
    /// serialising one `sum`. The word remainder (strides not divisible by
    /// 4) runs the plain scalar tail, and strides below a full chunk — the
    /// common small-universe arenas, stride 1–3 — skip the chunk iterators
    /// entirely so the unrolling costs them nothing per call.
    #[inline]
    pub fn and_count(&self, a: usize, b: usize) -> usize {
        let (a, b) = (self.entry(a), self.entry(b));
        if a.len() < 4 {
            return a
                .iter()
                .zip(b)
                .map(|(&x, &y)| (x & y).count_ones() as usize)
                .sum();
        }
        let mut wide = a.chunks_exact(4);
        let mut with = b.chunks_exact(4);
        let mut acc = [0usize; 4];
        for (x, y) in (&mut wide).zip(&mut with) {
            acc[0] += (x[0] & y[0]).count_ones() as usize;
            acc[1] += (x[1] & y[1]).count_ones() as usize;
            acc[2] += (x[2] & y[2]).count_ones() as usize;
            acc[3] += (x[3] & y[3]).count_ones() as usize;
        }
        let mut count = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (&x, &y) in wide.remainder().iter().zip(with.remainder()) {
            count += (x & y).count_ones() as usize;
        }
        count
    }

    /// Whether `a ⊆ b` — true when no word of `a` has a bit outside `b`.
    ///
    /// Violation bits of each 4-word chunk are OR-folded into one word
    /// before the (per-chunk) early-exit test, so the hot all-subset path
    /// is a branch every four words instead of every word. Sub-chunk
    /// strides take the plain word loop directly.
    #[inline]
    pub fn is_subset(&self, a: usize, b: usize) -> bool {
        let (a, b) = (self.entry(a), self.entry(b));
        if a.len() < 4 {
            return a.iter().zip(b).all(|(&x, &y)| x & !y == 0);
        }
        let mut wide = a.chunks_exact(4);
        let mut with = b.chunks_exact(4);
        for (x, y) in (&mut wide).zip(&mut with) {
            let violation = (x[0] & !y[0]) | (x[1] & !y[1]) | (x[2] & !y[2]) | (x[3] & !y[3]);
            if violation != 0 {
                return false;
            }
        }
        wide.remainder()
            .iter()
            .zip(with.remainder())
            .all(|(&x, &y)| x & !y == 0)
    }

    /// Whether `a ∩ b = ∅`.
    ///
    /// Same shape as [`is_subset`](Self::is_subset): overlap bits OR-fold
    /// across each 4-word chunk, early-exiting once per chunk. Sub-chunk
    /// strides take the plain word loop directly.
    #[inline]
    pub fn is_disjoint(&self, a: usize, b: usize) -> bool {
        let (a, b) = (self.entry(a), self.entry(b));
        if a.len() < 4 {
            return a.iter().zip(b).all(|(&x, &y)| x & y == 0);
        }
        let mut wide = a.chunks_exact(4);
        let mut with = b.chunks_exact(4);
        for (x, y) in (&mut wide).zip(&mut with) {
            let overlap = (x[0] & y[0]) | (x[1] & y[1]) | (x[2] & y[2]) | (x[3] & y[3]);
            if overlap != 0 {
                return false;
            }
        }
        wide.remainder()
            .iter()
            .zip(with.remainder())
            .all(|(&x, &y)| x & y == 0)
    }
}

/// The dense `ObjectId → bit slot` universe map owned by an interner.
///
/// Slots are handed out first-seen and never reused within an epoch; a
/// compaction epoch starts a fresh map covering only the objects of the
/// surviving sets (re-densification).
#[derive(Debug, Default, Clone)]
pub struct UniverseMap {
    slots: crate::hash::FxHashMap<ObjectId, u32>,
}

impl UniverseMap {
    /// Creates an empty universe.
    pub fn new() -> Self {
        UniverseMap::default()
    }

    /// Number of objects observed.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no object has been observed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot of `id`, assigning the next free one on first sight.
    #[inline]
    pub fn slot_of(&mut self, id: ObjectId) -> u32 {
        let next = self.slots.len() as u32;
        *self.slots.entry(id).or_insert(next)
    }

    /// The slot of `id`, if observed.
    #[inline]
    pub fn get(&self, id: ObjectId) -> Option<u32> {
        self.slots.get(&id).copied()
    }

    /// Iterates over every object currently holding a bit slot (arbitrary
    /// order — callers needing determinism must sort).
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.slots.keys().copied()
    }

    /// Approximate bytes held by the map.
    pub fn bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<(ObjectId, u32, u64)>()
    }

    /// Drops every mapping (compaction re-densifies from live sets).
    pub fn clear(&mut self) {
        self.slots = crate::hash::FxHashMap::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with(sets: &[&[u32]]) -> BitmapArena {
        let mut arena = BitmapArena::new();
        for slots in sets {
            if let Some(&max) = slots.iter().max() {
                arena.ensure_slot(max);
            }
            arena.push(slots.iter().copied());
        }
        arena
    }

    #[test]
    fn and_count_subset_disjoint_on_one_word() {
        let arena = arena_with(&[&[0, 2, 5], &[2, 5, 9], &[1, 3], &[]]);
        assert_eq!(arena.and_count(0, 1), 2);
        assert_eq!(arena.and_count(0, 2), 0);
        assert!(arena.is_disjoint(0, 2));
        assert!(!arena.is_disjoint(0, 1));
        assert!(arena.is_subset(3, 0), "empty set is a subset of anything");
        assert!(arena.is_disjoint(3, 0));
        assert!(!arena.is_subset(0, 1));
        let sub = arena_with(&[&[2, 5], &[0, 2, 5]]);
        assert!(sub.is_subset(0, 1));
        assert!(!sub.is_subset(1, 0));
    }

    #[test]
    fn restride_preserves_existing_entries() {
        let mut arena = arena_with(&[&[0, 63]]);
        assert_eq!(arena.stride(), 1);
        arena.ensure_slot(64);
        assert_eq!(arena.stride(), 2);
        arena.push([64u32, 0].iter().copied());
        assert_eq!(arena.and_count(0, 1), 1, "bit 0 survives the re-stride");
        assert!(!arena.is_subset(1, 0));
        arena.ensure_slot(1000);
        assert!(arena.stride() >= 16);
        assert_eq!(arena.and_count(0, 1), 1);
    }

    #[test]
    fn multi_word_kernels() {
        let mut arena = BitmapArena::new();
        arena.ensure_slot(200);
        arena.push([0u32, 64, 129, 200].iter().copied());
        arena.push([64u32, 129].iter().copied());
        arena.push([1u32, 65].iter().copied());
        assert_eq!(arena.and_count(0, 1), 2);
        assert!(arena.is_subset(1, 0));
        assert!(arena.is_disjoint(0, 2));
        assert!(arena.is_disjoint(1, 2));
    }

    #[test]
    fn clear_resets_layout() {
        let mut arena = arena_with(&[&[100]]);
        assert!(arena.stride() > 1);
        arena.clear();
        assert_eq!(arena.len(), 0);
        assert_eq!(arena.stride(), 1);
        arena.push([0u32].iter().copied());
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn unrolled_kernels_match_scalar_reference_across_strides_and_tails() {
        // Deterministic sweep of every chunk remainder (stride % 4 in
        // 0..=3), including the stride-1 arena, against the pre-unroll
        // scalar word loops.
        for stride_words in 1usize..=9 {
            let max_slot = (stride_words * 64 - 1) as u32;
            let a: Vec<u32> = (0..=max_slot).filter(|s| s % 3 == 0).collect();
            let b: Vec<u32> = (0..=max_slot)
                .filter(|s| s % 5 == 0 || s % 7 == 1)
                .collect();
            let arena = arena_with(&[&a, &b, &[]]);
            assert_eq!(arena.stride(), stride_words);
            assert_eq!(arena.and_count(0, 1), scalar_and_count(&arena, 0, 1));
            assert_eq!(arena.is_subset(0, 1), scalar_is_subset(&arena, 0, 1));
            assert_eq!(arena.is_disjoint(0, 1), scalar_is_disjoint(&arena, 0, 1));
            assert!(arena.is_subset(2, 0) && arena.is_disjoint(2, 1));
        }
    }

    /// The pre-unroll one-word-at-a-time kernels, kept as the reference the
    /// 4-wide production loops are checked against.
    fn scalar_and_count(arena: &BitmapArena, a: usize, b: usize) -> usize {
        arena
            .entry(a)
            .iter()
            .zip(arena.entry(b))
            .map(|(&x, &y)| (x & y).count_ones() as usize)
            .sum()
    }

    fn scalar_is_subset(arena: &BitmapArena, a: usize, b: usize) -> bool {
        arena
            .entry(a)
            .iter()
            .zip(arena.entry(b))
            .all(|(&x, &y)| x & !y == 0)
    }

    fn scalar_is_disjoint(arena: &BitmapArena, a: usize, b: usize) -> bool {
        arena
            .entry(a)
            .iter()
            .zip(arena.entry(b))
            .all(|(&x, &y)| x & y == 0)
    }

    mod unroll_proptests {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]
            // Random slot sets over a universe whose word count sweeps every
            // `chunks_exact(4)` remainder: universes up to 64 bits exercise
            // the stride-1 arena, larger ones the unrolled body plus tail
            // words. Raw slots reduce modulo the universe so every sampled
            // universe size sees dense occupancy.
            #[test]
            fn kernels_agree_with_scalar_reference_and_set_oracle(
                universe in 1u32..=576,
                raw_a in proptest::collection::vec(0u32..576, 0..48),
                raw_b in proptest::collection::vec(0u32..576, 0..48),
            ) {
                let a: Vec<u32> = raw_a.iter().map(|s| s % universe).collect();
                let b: Vec<u32> = raw_b.iter().map(|s| s % universe).collect();
                let mut arena = BitmapArena::new();
                arena.ensure_slot(universe - 1);
                arena.push(a.iter().copied());
                arena.push(b.iter().copied());
                // The pre-unroll scalar loops...
                prop_assert_eq!(arena.and_count(0, 1), scalar_and_count(&arena, 0, 1));
                prop_assert_eq!(arena.is_subset(0, 1), scalar_is_subset(&arena, 0, 1));
                prop_assert_eq!(arena.is_disjoint(0, 1), scalar_is_disjoint(&arena, 0, 1));
                // ...and the independent sorted-set oracle.
                let sa: BTreeSet<u32> = a.iter().copied().collect();
                let sb: BTreeSet<u32> = b.iter().copied().collect();
                prop_assert_eq!(arena.and_count(0, 1), sa.intersection(&sb).count());
                prop_assert_eq!(arena.is_subset(0, 1), sa.is_subset(&sb));
                prop_assert_eq!(arena.is_disjoint(0, 1), sa.is_disjoint(&sb));
            }
        }
    }

    #[test]
    fn universe_assigns_dense_slots_first_seen() {
        let mut universe = UniverseMap::new();
        assert_eq!(universe.slot_of(ObjectId(40)), 0);
        assert_eq!(universe.slot_of(ObjectId(7)), 1);
        assert_eq!(universe.slot_of(ObjectId(40)), 0, "stable on re-query");
        assert_eq!(universe.get(ObjectId(7)), Some(1));
        assert_eq!(universe.get(ObjectId(8)), None);
        assert_eq!(universe.len(), 2);
        universe.clear();
        assert!(universe.is_empty());
        assert_eq!(universe.slot_of(ObjectId(7)), 0, "re-densified");
    }
}
