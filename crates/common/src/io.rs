//! CSV import/export of video relations.
//!
//! Detection/tracking output is exchanged as a simple CSV relation with a
//! `fid,id,class` header — the textual form of the paper's structured
//! relation VR. Real detector output (for example from an external
//! Faster R-CNN + Deep SORT pipeline) can be ingested through this module,
//! and synthetic feeds can be persisted for inspection.
//!
//! The format is deliberately minimal (no quoting or escaping) because class
//! labels are single lowercase words; the writer validates this assumption.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::class::ClassRegistry;
use crate::error::{Error, Result};
use crate::ids::{FrameId, ObjectId};
use crate::relation::{ObjectRecord, VideoRelation};

/// The header line written and expected by this module.
pub const CSV_HEADER: &str = "fid,id,class";

/// Writes a relation as CSV to any [`Write`] sink.
pub fn write_relation_csv<W: Write>(relation: &VideoRelation, mut sink: W) -> Result<()> {
    writeln!(sink, "{CSV_HEADER}")?;
    for record in relation.records() {
        let label = relation.registry().require_label(record.class)?;
        debug_assert!(
            !label.as_str().contains([',', '\n']),
            "class labels must not contain separators"
        );
        writeln!(sink, "{},{},{}", record.fid.raw(), record.id.raw(), label)?;
    }
    Ok(())
}

/// Writes a relation as CSV to a file path.
pub fn write_relation_csv_file(relation: &VideoRelation, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_relation_csv(relation, std::io::BufWriter::new(file))
}

/// Reads a relation from CSV. Unknown class labels are registered on the fly
/// into a copy of `registry`.
pub fn read_relation_csv<R: Read>(source: R, registry: ClassRegistry) -> Result<VideoRelation> {
    let mut registry = registry;
    let reader = BufReader::new(source);
    let mut records: Vec<ObjectRecord> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if idx == 0 {
            if trimmed != CSV_HEADER {
                return Err(Error::MalformedRecord {
                    line: line_no,
                    message: format!("expected header {CSV_HEADER:?}, found {trimmed:?}"),
                });
            }
            continue;
        }
        let mut parts = trimmed.split(',');
        let (fid, id, class) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(fid), Some(id), Some(class), None) => (fid, id, class),
            _ => {
                return Err(Error::MalformedRecord {
                    line: line_no,
                    message: "expected exactly three comma-separated columns".to_owned(),
                })
            }
        };
        let fid: u64 = fid.trim().parse().map_err(|_| Error::MalformedRecord {
            line: line_no,
            message: format!("invalid frame id {fid:?}"),
        })?;
        let id: u32 = id.trim().parse().map_err(|_| Error::MalformedRecord {
            line: line_no,
            message: format!("invalid object id {id:?}"),
        })?;
        let class = registry.register(class);
        records.push(ObjectRecord {
            fid: FrameId(fid),
            id: ObjectId(id),
            class,
        });
    }
    VideoRelation::from_records(registry, &records)
}

/// Reads a relation from a CSV file path.
pub fn read_relation_csv_file(
    path: impl AsRef<Path>,
    registry: ClassRegistry,
) -> Result<VideoRelation> {
    let file = std::fs::File::open(path)?;
    read_relation_csv(file, registry)
}

/// Serialises a relation to an in-memory CSV string (handy for tests and
/// examples).
pub fn relation_to_csv_string(relation: &VideoRelation) -> Result<String> {
    let mut buffer = Vec::new();
    write_relation_csv(relation, &mut buffer)?;
    String::from_utf8(buffer).map_err(|e| Error::InvalidConfig(format!("non-UTF8 CSV output: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClassId;

    fn sample_relation() -> VideoRelation {
        let mut vr = VideoRelation::with_default_classes();
        let person = ClassId(0);
        let car = ClassId(1);
        vr.push_detections(vec![(ObjectId(1), car), (ObjectId(2), person)]);
        vr.push_detections(vec![(ObjectId(1), car)]);
        vr.push_detections(vec![]);
        vr.push_detections(vec![(ObjectId(3), car), (ObjectId(2), person)]);
        vr
    }

    #[test]
    fn round_trip_preserves_relation() {
        let vr = sample_relation();
        let csv = relation_to_csv_string(&vr).unwrap();
        assert!(csv.starts_with("fid,id,class\n"));
        let parsed =
            read_relation_csv(csv.as_bytes(), ClassRegistry::with_default_classes()).unwrap();
        assert_eq!(parsed.num_frames(), vr.num_frames());
        assert_eq!(parsed.num_records(), vr.num_records());
        for fid in 0..vr.num_frames() as u64 {
            assert_eq!(
                parsed.frame(FrameId(fid)).unwrap().objects,
                vr.frame(FrameId(fid)).unwrap().objects,
                "frame {fid} differs"
            );
        }
        assert_eq!(parsed.class_of(ObjectId(2)), vr.class_of(ObjectId(2)));
    }

    #[test]
    fn reader_registers_new_classes() {
        let csv = "fid,id,class\n0,1,drone\n1,1,drone\n";
        let parsed =
            read_relation_csv(csv.as_bytes(), ClassRegistry::with_default_classes()).unwrap();
        assert!(parsed.registry().id("drone").is_some());
        assert_eq!(parsed.num_objects(), 1);
    }

    #[test]
    fn reader_rejects_bad_header() {
        let csv = "frame,obj,label\n0,1,car\n";
        let err = read_relation_csv(csv.as_bytes(), ClassRegistry::default()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn reader_rejects_malformed_rows() {
        for bad in [
            "fid,id,class\n0,1\n",
            "fid,id,class\nzero,1,car\n",
            "fid,id,class\n0,one,car\n",
            "fid,id,class\n0,1,car,extra\n",
        ] {
            assert!(
                read_relation_csv(bad.as_bytes(), ClassRegistry::default()).is_err(),
                "accepted malformed input {bad:?}"
            );
        }
    }

    #[test]
    fn reader_skips_blank_lines() {
        let csv = "fid,id,class\n\n0,1,car\n\n1,2,person\n";
        let parsed = read_relation_csv(csv.as_bytes(), ClassRegistry::default()).unwrap();
        assert_eq!(parsed.num_records(), 2);
    }

    #[test]
    fn file_round_trip() {
        let vr = sample_relation();
        let dir = std::env::temp_dir().join("tvq-common-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("relation.csv");
        write_relation_csv_file(&vr, &path).unwrap();
        let parsed = read_relation_csv_file(&path, ClassRegistry::with_default_classes()).unwrap();
        assert_eq!(parsed.num_records(), vr.num_records());
        std::fs::remove_file(&path).ok();
    }
}
