//! Sorted object-identifier sets.
//!
//! Every algorithm in the MCOS generation layer is driven by intersections of
//! small object sets (typically 5–15 objects per frame, per the paper's
//! Table 6). [`ObjectSet`] stores identifiers as a sorted, deduplicated
//! boxed slice: intersections, subset tests and equality are all linear merges
//! over contiguous memory, the representation hashes cheaply and can be used
//! directly as a hash-map key for state lookup.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::ids::ObjectId;

/// An immutable, sorted, deduplicated set of [`ObjectId`]s.
///
/// The set is cheaply cloneable (`Arc`-backed) because the state-maintenance
/// structures share object sets between states, graph nodes and result sets.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ObjectSet {
    ids: Arc<[ObjectId]>,
}

impl ObjectSet {
    /// Creates an empty set.
    pub fn empty() -> Self {
        ObjectSet { ids: Arc::from([]) }
    }

    /// Builds a set from arbitrary identifiers, sorting and deduplicating.
    pub fn from_ids<I>(ids: I) -> Self
    where
        I: IntoIterator<Item = ObjectId>,
    {
        let mut v: Vec<ObjectId> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        ObjectSet { ids: v.into() }
    }

    /// Builds a set from raw `u32` identifiers (convenience for tests and
    /// examples).
    pub fn from_raw<I>(ids: I) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        ObjectSet::from_ids(ids.into_iter().map(ObjectId))
    }

    /// Builds a set from a vector that is already sorted and deduplicated.
    ///
    /// This is the fast path used by the per-frame ingestion code. Debug
    /// builds assert the invariant (strictly increasing identifiers — i.e.
    /// sorted with no duplicates); release builds verify it with a linear
    /// scan and fall back to sorting and deduplicating, so a misbehaving
    /// caller degrades to the safe constructor instead of corrupting every
    /// downstream merge, subset test and hash.
    pub fn from_sorted_unchecked(mut ids: Vec<ObjectId>) -> Self {
        let strictly_increasing = ids.windows(2).all(|w| w[0] < w[1]);
        debug_assert!(
            strictly_increasing,
            "from_sorted_unchecked requires strictly increasing ids \
             (sorted, deduplicated); got {ids:?}"
        );
        if !strictly_increasing {
            ids.sort_unstable();
            ids.dedup();
        }
        ObjectSet { ids: ids.into() }
    }

    /// Number of objects in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates over the identifiers in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.ids.iter().copied()
    }

    /// Returns the identifiers as a slice (sorted, deduplicated).
    #[inline]
    pub fn as_slice(&self) -> &[ObjectId] {
        &self.ids
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: ObjectId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Computes the intersection of two sets with a linear merge.
    pub fn intersect(&self, other: &ObjectSet) -> ObjectSet {
        if self.is_empty() || other.is_empty() {
            return ObjectSet::empty();
        }
        // Fast path: identical Arcs share the same contents.
        if Arc::ptr_eq(&self.ids, &other.ids) {
            return self.clone();
        }
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.ids, &other.ids);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        ObjectSet { ids: out.into() }
    }

    /// Size of the intersection without materialising it.
    pub fn intersection_len(&self, other: &ObjectSet) -> usize {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.ids, &other.ids);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Computes the union of two sets.
    pub fn union(&self, other: &ObjectSet) -> ObjectSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.ids, &other.ids);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        ObjectSet { ids: out.into() }
    }

    /// Computes the set difference `self \ other`.
    pub fn difference(&self, other: &ObjectSet) -> ObjectSet {
        let mut out = Vec::with_capacity(self.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.ids, &other.ids);
        while i < a.len() {
            if j >= b.len() || a[i] < b[j] {
                out.push(a[i]);
                i += 1;
            } else if a[i] > b[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        ObjectSet { ids: out.into() }
    }

    /// Returns `true` when `self ⊆ other`.
    pub fn is_subset_of(&self, other: &ObjectSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        self.intersection_len(other) == self.len()
    }

    /// Returns `true` when `self ⊂ other` (proper subset).
    pub fn is_proper_subset_of(&self, other: &ObjectSet) -> bool {
        self.len() < other.len() && self.is_subset_of(other)
    }

    /// Returns `true` when the two sets share no object.
    pub fn is_disjoint_from(&self, other: &ObjectSet) -> bool {
        self.intersection_len(other) == 0
    }
}

impl Deref for ObjectSet {
    type Target = [ObjectId];

    fn deref(&self) -> &Self::Target {
        &self.ids
    }
}

impl FromIterator<ObjectId> for ObjectSet {
    fn from_iter<T: IntoIterator<Item = ObjectId>>(iter: T) -> Self {
        ObjectSet::from_ids(iter)
    }
}

impl fmt::Debug for ObjectSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (idx, id) in self.ids.iter().enumerate() {
            if idx > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", id.raw())?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ObjectSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().map(|o| o.raw()).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn empty_set_behaviour() {
        let e = ObjectSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_subset_of(&set(&[1, 2])));
        assert!(e.is_disjoint_from(&set(&[1])));
        assert_eq!(e.intersect(&set(&[1, 2])), ObjectSet::empty());
        assert_eq!(e.union(&set(&[1, 2])), set(&[1, 2]));
    }

    #[test]
    fn intersection_matches_manual_merge() {
        let a = set(&[1, 2, 3, 5, 8]);
        let b = set(&[2, 3, 4, 8, 9]);
        assert_eq!(a.intersect(&b), set(&[2, 3, 8]));
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(b.intersect(&a), set(&[2, 3, 8]));
    }

    #[test]
    fn union_and_difference() {
        let a = set(&[1, 3, 5]);
        let b = set(&[2, 3, 6]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 5, 6]));
        assert_eq!(a.difference(&b), set(&[1, 5]));
        assert_eq!(b.difference(&a), set(&[2, 6]));
    }

    #[test]
    fn subset_relations() {
        let a = set(&[2, 3]);
        let b = set(&[1, 2, 3, 4]);
        assert!(a.is_subset_of(&b));
        assert!(a.is_proper_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(!a.is_proper_subset_of(&a));
    }

    #[test]
    fn contains_uses_binary_search() {
        let a = set(&[10, 20, 30]);
        assert!(a.contains(ObjectId(20)));
        assert!(!a.contains(ObjectId(25)));
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", set(&[3, 1])), "{1,3}");
        assert_eq!(format!("{}", ObjectSet::empty()), "{}");
    }

    #[test]
    fn sets_work_as_hash_map_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<ObjectSet, u32> = HashMap::new();
        m.insert(set(&[1, 2]), 7);
        assert_eq!(m.get(&set(&[2, 1])), Some(&7));
        assert_eq!(m.get(&set(&[1])), None);
    }

    #[test]
    fn from_sorted_unchecked_round_trips() {
        let ids = vec![ObjectId(1), ObjectId(4), ObjectId(9)];
        let s = ObjectSet::from_sorted_unchecked(ids.clone());
        assert_eq!(s.as_slice(), ids.as_slice());
    }

    /// Debug builds reject an invariant violation loudly.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_unchecked_panics_on_bad_input_in_debug() {
        let _ = ObjectSet::from_sorted_unchecked(vec![ObjectId(4), ObjectId(1), ObjectId(4)]);
    }

    /// Release builds repair a bad caller instead of corrupting state.
    #[cfg(not(debug_assertions))]
    #[test]
    fn from_sorted_unchecked_repairs_bad_input_in_release() {
        let s = ObjectSet::from_sorted_unchecked(vec![ObjectId(4), ObjectId(1), ObjectId(4)]);
        assert_eq!(s, set(&[1, 4]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn to_btree(s: &ObjectSet) -> BTreeSet<u32> {
        s.iter().map(|o| o.raw()).collect()
    }

    proptest! {
        #[test]
        fn intersect_agrees_with_btreeset(a in proptest::collection::vec(0u32..64, 0..32),
                                          b in proptest::collection::vec(0u32..64, 0..32)) {
            let sa = ObjectSet::from_raw(a.iter().copied());
            let sb = ObjectSet::from_raw(b.iter().copied());
            let expected: BTreeSet<u32> = to_btree(&sa).intersection(&to_btree(&sb)).copied().collect();
            prop_assert_eq!(to_btree(&sa.intersect(&sb)), expected);
            prop_assert_eq!(sa.intersection_len(&sb), sa.intersect(&sb).len());
        }

        #[test]
        fn union_agrees_with_btreeset(a in proptest::collection::vec(0u32..64, 0..32),
                                      b in proptest::collection::vec(0u32..64, 0..32)) {
            let sa = ObjectSet::from_raw(a.iter().copied());
            let sb = ObjectSet::from_raw(b.iter().copied());
            let expected: BTreeSet<u32> = to_btree(&sa).union(&to_btree(&sb)).copied().collect();
            prop_assert_eq!(to_btree(&sa.union(&sb)), expected);
        }

        #[test]
        fn difference_agrees_with_btreeset(a in proptest::collection::vec(0u32..64, 0..32),
                                           b in proptest::collection::vec(0u32..64, 0..32)) {
            let sa = ObjectSet::from_raw(a.iter().copied());
            let sb = ObjectSet::from_raw(b.iter().copied());
            let expected: BTreeSet<u32> = to_btree(&sa).difference(&to_btree(&sb)).copied().collect();
            prop_assert_eq!(to_btree(&sa.difference(&sb)), expected);
        }

        #[test]
        fn subset_is_consistent_with_intersection(a in proptest::collection::vec(0u32..32, 0..24),
                                                  b in proptest::collection::vec(0u32..32, 0..24)) {
            let sa = ObjectSet::from_raw(a.iter().copied());
            let sb = ObjectSet::from_raw(b.iter().copied());
            prop_assert_eq!(sa.is_subset_of(&sb), sa.intersect(&sb) == sa);
        }

        #[test]
        fn intersection_is_commutative_and_bounded(a in proptest::collection::vec(0u32..64, 0..32),
                                                   b in proptest::collection::vec(0u32..64, 0..32)) {
            let sa = ObjectSet::from_raw(a.iter().copied());
            let sb = ObjectSet::from_raw(b.iter().copied());
            let ab = sa.intersect(&sb);
            prop_assert_eq!(ab.clone(), sb.intersect(&sa));
            prop_assert!(ab.len() <= sa.len().min(sb.len()));
            prop_assert!(ab.is_subset_of(&sa));
            prop_assert!(ab.is_subset_of(&sb));
        }
    }
}
