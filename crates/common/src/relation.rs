//! The structured relation `VR(fid, id, class)` extracted from a video feed.
//!
//! The object detection/tracking layer (real or simulated) reduces every
//! frame to the set of objects visible in it, each carrying a persistent
//! object identifier and a class label. [`VideoRelation`] stores that
//! relation frame by frame and is the only interface between the vision
//! substrate and the query-processing layers.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::class::ClassRegistry;
use crate::error::{Error, Result};
use crate::ids::{ClassId, FrameId, ObjectId};
use crate::object_set::ObjectSet;

/// One tuple of the structured relation: object `id` of class `class` was
/// detected in frame `fid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectRecord {
    /// Frame in which the object was detected.
    pub fid: FrameId,
    /// Persistent object identifier assigned by the tracker.
    pub id: ObjectId,
    /// Class of the object.
    pub class: ClassId,
}

/// The detections of a single frame: the set of visible objects plus the
/// class of each.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameObjects {
    /// Frame identifier.
    pub fid: FrameId,
    /// Sorted set of objects visible in the frame.
    pub objects: ObjectSet,
    /// Class of every object in `objects`.
    pub classes: Vec<(ObjectId, ClassId)>,
    /// Tracker identifiers whose tracks *ended* at this frame. An explicit
    /// end-of-track event tells consumers the id's previous owner is gone
    /// for good, so a later reappearance of the same id — even with the
    /// same class — is a new physical object. Ends apply **before** this
    /// frame's detections: an id in both lists was ended and instantly
    /// recycled to a newcomer visible this very frame. Ingest protocols
    /// without end events leave this empty; consumers then fall back to
    /// coarser reuse detection (class changes, epoch retirement).
    pub track_ends: Vec<ObjectId>,
}

impl FrameObjects {
    /// Builds the per-frame detection set from `(object, class)` pairs.
    pub fn new(fid: FrameId, mut detections: Vec<(ObjectId, ClassId)>) -> Self {
        detections.sort_unstable_by_key(|&(id, _)| id);
        detections.dedup_by_key(|&mut (id, _)| id);
        let objects =
            ObjectSet::from_sorted_unchecked(detections.iter().map(|&(id, _)| id).collect());
        FrameObjects {
            fid,
            objects,
            classes: detections,
            track_ends: Vec::new(),
        }
    }

    /// Attaches tracker end-of-track events to the frame. Duplicates are
    /// removed and the list is sorted so frames compare deterministically.
    /// An id that also appears in this frame's detections is legal: the
    /// end applies first, so the detection is the id's *next* owner.
    pub fn with_track_ends(mut self, mut ends: Vec<ObjectId>) -> Self {
        ends.sort_unstable();
        ends.dedup();
        self.track_ends = ends;
        self
    }

    /// Number of objects detected in the frame.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the frame contains no detections.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Class of a specific object in this frame, if present.
    pub fn class_of(&self, id: ObjectId) -> Option<ClassId> {
        self.classes
            .binary_search_by_key(&id, |&(o, _)| o)
            .ok()
            .map(|idx| self.classes[idx].1)
    }
}

/// A full structured relation: the per-frame object sets of a (bounded)
/// video feed together with the global object → class mapping.
///
/// Frames are stored densely in presentation order. The relation also keeps
/// the class registry used to name classes so it is self-describing.
#[derive(Debug, Clone)]
pub struct VideoRelation {
    frames: Vec<FrameObjects>,
    classes: HashMap<ObjectId, ClassId>,
    registry: ClassRegistry,
}

impl VideoRelation {
    /// Creates an empty relation using the given class registry.
    pub fn new(registry: ClassRegistry) -> Self {
        VideoRelation {
            frames: Vec::new(),
            classes: HashMap::new(),
            registry,
        }
    }

    /// Creates an empty relation with the default (person/car/truck/bus)
    /// registry.
    pub fn with_default_classes() -> Self {
        VideoRelation::new(ClassRegistry::with_default_classes())
    }

    /// Builds a relation from a flat list of records.
    ///
    /// Frames absent from the records become empty frames; the relation spans
    /// frame 0 through the maximum frame id present.
    pub fn from_records(registry: ClassRegistry, records: &[ObjectRecord]) -> Result<Self> {
        let mut per_frame: BTreeMap<FrameId, Vec<(ObjectId, ClassId)>> = BTreeMap::new();
        let mut max_frame = FrameId(0);
        for record in records {
            if record.class.raw() as usize >= registry.len() {
                return Err(Error::UnknownClassId(record.class.raw()));
            }
            per_frame
                .entry(record.fid)
                .or_default()
                .push((record.id, record.class));
            max_frame = max_frame.max(record.fid);
        }
        let mut relation = VideoRelation::new(registry);
        if records.is_empty() {
            return Ok(relation);
        }
        for raw_fid in 0..=max_frame.raw() {
            let fid = FrameId(raw_fid);
            let detections = per_frame.remove(&fid).unwrap_or_default();
            relation.push_frame(FrameObjects::new(fid, detections));
        }
        Ok(relation)
    }

    /// Appends a frame. The frame id must equal the current frame count
    /// (frames are dense and in order).
    pub fn push_frame(&mut self, frame: FrameObjects) {
        debug_assert_eq!(
            frame.fid.raw() as usize,
            self.frames.len(),
            "frames must be appended densely in order"
        );
        for &(id, class) in &frame.classes {
            self.classes.entry(id).or_insert(class);
        }
        self.frames.push(frame);
    }

    /// Convenience: append a frame described by `(object id, class id)` pairs.
    pub fn push_detections(&mut self, detections: Vec<(ObjectId, ClassId)>) -> FrameId {
        let fid = FrameId(self.frames.len() as u64);
        self.push_frame(FrameObjects::new(fid, detections));
        fid
    }

    /// Number of frames in the relation.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Whether the relation holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Number of distinct objects observed across the whole feed.
    pub fn num_objects(&self) -> usize {
        self.classes.len()
    }

    /// The class registry describing this relation's class identifiers.
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    /// Mutable access to the registry (used when ingesting external data that
    /// introduces new classes).
    pub fn registry_mut(&mut self) -> &mut ClassRegistry {
        &mut self.registry
    }

    /// The global class of an object (objects keep one class for the whole
    /// feed — trackers do not change an object's class).
    pub fn class_of(&self, id: ObjectId) -> Option<ClassId> {
        self.classes.get(&id).copied()
    }

    /// The object → class mapping for the whole feed.
    pub fn object_classes(&self) -> &HashMap<ObjectId, ClassId> {
        &self.classes
    }

    /// The detections of frame `fid`, if it exists.
    pub fn frame(&self, fid: FrameId) -> Option<&FrameObjects> {
        self.frames.get(fid.raw() as usize)
    }

    /// Iterates over frames in presentation order.
    pub fn frames(&self) -> impl Iterator<Item = &FrameObjects> {
        self.frames.iter()
    }

    /// Iterates over the flat `(fid, id, class)` records of the relation.
    pub fn records(&self) -> impl Iterator<Item = ObjectRecord> + '_ {
        self.frames.iter().flat_map(|frame| {
            frame.classes.iter().map(move |&(id, class)| ObjectRecord {
                fid: frame.fid,
                id,
                class,
            })
        })
    }

    /// Returns a copy of the relation truncated to its first `n` frames.
    pub fn truncated(&self, n: usize) -> VideoRelation {
        VideoRelation {
            frames: self.frames.iter().take(n).cloned().collect(),
            classes: self
                .frames
                .iter()
                .take(n)
                .flat_map(|f| f.classes.iter().copied())
                .collect(),
            registry: self.registry.clone(),
        }
    }

    /// Returns a copy of the relation keeping only objects of the given
    /// classes (the paper drops objects whose class no query requests before
    /// they reach MCOS generation).
    pub fn filtered_to_classes(&self, keep: &HashSet<ClassId>) -> VideoRelation {
        let mut out = VideoRelation::new(self.registry.clone());
        for frame in &self.frames {
            let detections: Vec<(ObjectId, ClassId)> = frame
                .classes
                .iter()
                .copied()
                .filter(|(_, class)| keep.contains(class))
                .collect();
            out.push_frame(FrameObjects::new(frame.fid, detections));
        }
        out
    }

    /// Total number of `(fid, id, class)` tuples.
    pub fn num_records(&self) -> usize {
        self.frames.iter().map(|f| f.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_relation() -> VideoRelation {
        // Mirrors the 5-frame example of Section 2: ({B},{ABC},{ABDF},{ABCF},{ABD})
        // with everything of class "car" except object 1 (A) which is a person.
        let mut vr = VideoRelation::with_default_classes();
        let person = vr.registry().id("person").unwrap();
        let car = vr.registry().id("car").unwrap();
        let class_of = |o: u32| if o == 1 { person } else { car };
        let frames: Vec<Vec<u32>> = vec![
            vec![2],
            vec![1, 2, 3],
            vec![1, 2, 4, 6],
            vec![1, 2, 3, 6],
            vec![1, 2, 4],
        ];
        for objs in frames {
            vr.push_detections(
                objs.into_iter()
                    .map(|o| (ObjectId(o), class_of(o)))
                    .collect(),
            );
        }
        vr
    }

    #[test]
    fn push_and_query_frames() {
        let vr = small_relation();
        assert_eq!(vr.num_frames(), 5);
        assert_eq!(vr.num_objects(), 5);
        assert_eq!(vr.num_records(), 1 + 3 + 4 + 4 + 3);
        let f2 = vr.frame(FrameId(2)).unwrap();
        assert_eq!(f2.objects, ObjectSet::from_raw([1, 2, 4, 6]));
        assert!(vr.frame(FrameId(9)).is_none());
    }

    #[test]
    fn classes_are_persistent_per_object() {
        let vr = small_relation();
        let person = vr.registry().id("person").unwrap();
        let car = vr.registry().id("car").unwrap();
        assert_eq!(vr.class_of(ObjectId(1)), Some(person));
        assert_eq!(vr.class_of(ObjectId(6)), Some(car));
        assert_eq!(vr.class_of(ObjectId(99)), None);
        let f1 = vr.frame(FrameId(1)).unwrap();
        assert_eq!(f1.class_of(ObjectId(1)), Some(person));
        assert_eq!(f1.class_of(ObjectId(9)), None);
    }

    #[test]
    fn records_round_trip_through_from_records() {
        let vr = small_relation();
        let records: Vec<ObjectRecord> = vr.records().collect();
        let rebuilt = VideoRelation::from_records(vr.registry().clone(), &records).unwrap();
        assert_eq!(rebuilt.num_frames(), vr.num_frames());
        for fid in 0..vr.num_frames() as u64 {
            assert_eq!(
                rebuilt.frame(FrameId(fid)).unwrap().objects,
                vr.frame(FrameId(fid)).unwrap().objects
            );
        }
    }

    #[test]
    fn from_records_rejects_unknown_class() {
        let registry = ClassRegistry::with_default_classes();
        let records = vec![ObjectRecord {
            fid: FrameId(0),
            id: ObjectId(1),
            class: ClassId(42),
        }];
        assert!(VideoRelation::from_records(registry, &records).is_err());
    }

    #[test]
    fn from_records_fills_missing_frames() {
        let registry = ClassRegistry::with_default_classes();
        let car = registry.id("car").unwrap();
        let records = vec![
            ObjectRecord {
                fid: FrameId(0),
                id: ObjectId(1),
                class: car,
            },
            ObjectRecord {
                fid: FrameId(3),
                id: ObjectId(1),
                class: car,
            },
        ];
        let vr = VideoRelation::from_records(registry, &records).unwrap();
        assert_eq!(vr.num_frames(), 4);
        assert!(vr.frame(FrameId(1)).unwrap().is_empty());
        assert!(vr.frame(FrameId(2)).unwrap().is_empty());
    }

    #[test]
    fn truncation_keeps_prefix() {
        let vr = small_relation();
        let t = vr.truncated(2);
        assert_eq!(t.num_frames(), 2);
        assert_eq!(t.num_objects(), 3); // A, B, C (B appears in both frames)
    }

    #[test]
    fn class_filtering_drops_objects() {
        let vr = small_relation();
        let person = vr.registry().id("person").unwrap();
        let keep: HashSet<ClassId> = [person].into_iter().collect();
        let filtered = vr.filtered_to_classes(&keep);
        assert_eq!(filtered.num_frames(), vr.num_frames());
        assert!(filtered.frame(FrameId(0)).unwrap().is_empty());
        assert_eq!(
            filtered.frame(FrameId(1)).unwrap().objects,
            ObjectSet::from_raw([1])
        );
    }

    #[test]
    fn track_ends_are_sorted_and_deduped() {
        let car = ClassId(1);
        let frame = FrameObjects::new(FrameId(0), vec![(ObjectId(5), car), (ObjectId(2), car)])
            .with_track_ends(vec![ObjectId(9), ObjectId(5), ObjectId(3), ObjectId(9)]);
        // Sorted and deduplicated; id 5 is kept even though it is also
        // detected — the end applies first, the detection is its recycled
        // successor.
        assert_eq!(
            frame.track_ends,
            vec![ObjectId(3), ObjectId(5), ObjectId(9)]
        );
        // Plain construction carries no end events.
        assert!(FrameObjects::new(FrameId(1), vec![]).track_ends.is_empty());
    }

    #[test]
    fn frame_objects_dedups_duplicate_detections() {
        let car = ClassId(1);
        let frame = FrameObjects::new(
            FrameId(0),
            vec![(ObjectId(5), car), (ObjectId(5), car), (ObjectId(2), car)],
        );
        assert_eq!(frame.len(), 2);
        assert_eq!(frame.objects, ObjectSet::from_raw([2, 5]));
    }
}
