//! Strongly typed identifiers.
//!
//! The paper's structured relation `VR(fid, id, class)` mixes three kinds of
//! integers: frame identifiers, object (track) identifiers and class
//! identifiers. Newtypes keep them from being confused and give each a
//! natural display form.

use std::fmt;

/// Identifier of a frame in a video feed.
///
/// Frames are numbered `0..N` in presentation order; the sliding window and
/// all expiry logic rely on frame identifiers being monotonically increasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameId(pub u64);

/// Identifier of a unique object produced by the tracking layer.
///
/// Object tracking guarantees that the same physical object keeps the same
/// identifier across the frames in which it appears, including across
/// occlusions that the tracker manages to bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId(pub u32);

/// Identifier of an object class (person, car, truck, bus, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClassId(pub u16);

/// Identifier of a registered CNF query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QueryId(pub u32);

/// Identifier of a video feed (camera) in a multi-feed deployment.
///
/// A deployment ingests many feeds concurrently; every frame entering the
/// multi-feed engine is tagged with the feed it belongs to, and all
/// cross-feed reports are ordered by feed identifier so that merged output
/// is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FeedId(pub u32);

/// Identifier of a ground-truth track in the scene simulator.
///
/// Distinct from [`ObjectId`]: the simulated tracker may split one physical
/// track into several object identifiers (identity switches), which is exactly
/// the error mode the paper's occlusion semantics are designed to tolerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TrackId(pub u64);

macro_rules! impl_id {
    ($name:ident, $inner:ty, $prefix:literal) => {
        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Wraps a raw integer value.
            #[inline]
            pub const fn new(value: $inner) -> Self {
                Self(value)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(value: $inner) -> Self {
                Self(value)
            }
        }

        impl From<$name> for $inner {
            fn from(value: $name) -> $inner {
                value.0
            }
        }
    };
}

impl_id!(FrameId, u64, "f");
impl_id!(ObjectId, u32, "o");
impl_id!(ClassId, u16, "c");
impl_id!(QueryId, u32, "q");
impl_id!(TrackId, u64, "t");
impl_id!(FeedId, u32, "feed");

impl FrameId {
    /// Returns the following frame identifier.
    #[inline]
    pub const fn next(self) -> FrameId {
        FrameId(self.0 + 1)
    }

    /// Returns the distance (in frames) from `other` to `self`, saturating at
    /// zero when `other` is later than `self`.
    #[inline]
    pub const fn distance_from(self, other: FrameId) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(FrameId(3).to_string(), "f3");
        assert_eq!(ObjectId(9).to_string(), "o9");
        assert_eq!(ClassId(1).to_string(), "c1");
        assert_eq!(QueryId(12).to_string(), "q12");
        assert_eq!(TrackId(4).to_string(), "t4");
        assert_eq!(FeedId(2).to_string(), "feed2");
    }

    #[test]
    fn conversions_round_trip() {
        let f: FrameId = 42u64.into();
        assert_eq!(u64::from(f), 42);
        assert_eq!(f.raw(), 42);
        let o = ObjectId::new(7);
        assert_eq!(u32::from(o), 7);
    }

    #[test]
    fn frame_arithmetic() {
        assert_eq!(FrameId(5).next(), FrameId(6));
        assert_eq!(FrameId(10).distance_from(FrameId(4)), 6);
        assert_eq!(FrameId(4).distance_from(FrameId(10)), 0);
    }

    #[test]
    fn ordering_follows_raw_values() {
        assert!(FrameId(1) < FrameId(2));
        assert!(ObjectId(10) > ObjectId(9));
        let mut v = vec![FrameId(3), FrameId(1), FrameId(2)];
        v.sort();
        assert_eq!(v, vec![FrameId(1), FrameId(2), FrameId(3)]);
    }
}
