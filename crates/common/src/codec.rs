//! Versioned hand-rolled binary codec for the durability layer.
//!
//! The workspace vendors no serde, so every persistent structure (WAL
//! records, epoch snapshots) is serialized through this module: an
//! [`Encoder`] that appends primitives to a growable byte buffer and a
//! [`Decoder`] that consumes them back, plus the CRC-32 checksum both the
//! WAL and the snapshot store frame their payloads with.
//!
//! Conventions:
//!
//! * integers are LEB128 varints (`put_u64` / `take_u64` and the narrower
//!   helpers built on them) — snapshots are dominated by small ids, so
//!   varints roughly halve them relative to fixed-width encoding;
//! * floats are encoded as their IEEE-754 bit pattern, little-endian;
//! * sequences are a length varint followed by the elements;
//! * every top-level artifact begins with a fixed header
//!   ([`Encoder::put_header`] / [`Decoder::check_header`]): a 4-byte magic
//!   and a version varint. Unknown versions are rejected with a clean
//!   [`Error::Codec`] — never a panic — so a binary from the future fails
//!   loudly instead of misreading bytes.
//!
//! Decoding is *total*: every `take_*` returns `Result` and truncated or
//! malformed input surfaces as [`Error::Codec`].

use crate::error::{Error, Result};

/// Appends primitives to a growable byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Creates an encoder with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes the artifact header: a 4-byte magic followed by a version
    /// varint.
    pub fn put_header(&mut self, magic: [u8; 4], version: u32) {
        self.buf.extend_from_slice(&magic);
        self.put_u32(version);
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, value: bool) {
        self.buf.push(u8::from(value));
    }

    /// Appends an unsigned 64-bit integer as a LEB128 varint.
    pub fn put_u64(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends an unsigned 32-bit integer as a varint.
    pub fn put_u32(&mut self, value: u32) {
        self.put_u64(u64::from(value));
    }

    /// Appends an unsigned 16-bit integer as a varint.
    pub fn put_u16(&mut self, value: u16) {
        self.put_u64(u64::from(value));
    }

    /// Appends a `usize` as a varint.
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_bytes(value.as_bytes());
    }

    /// Appends an `Option<u64>` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, value: Option<u64>) {
        match value {
            Some(v) => {
                self.put_bool(true);
                self.put_u64(v);
            }
            None => self.put_bool(false),
        }
    }
}

/// Consumes primitives from a byte slice, mirroring [`Encoder`].
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn codec_err(message: impl Into<String>) -> Error {
    Error::Codec(message.into())
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Checks the artifact header: the magic must match exactly and the
    /// version must be `expected_version` or lower. Returns the version
    /// found, so callers can branch on older layouts; a *newer* version is
    /// rejected with a clean error (a binary cannot read formats from its
    /// future).
    pub fn check_header(&mut self, magic: [u8; 4], expected_version: u32) -> Result<u32> {
        let found = self.take_array::<4>()?;
        if found != magic {
            return Err(codec_err(format!(
                "bad magic: expected {magic:02x?}, found {found:02x?}"
            )));
        }
        let version = self.take_u32()?;
        if version > expected_version {
            return Err(codec_err(format!(
                "unsupported codec version {version} (this build reads up to {expected_version})"
            )));
        }
        Ok(version)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        if self.remaining() < N {
            return Err(codec_err(format!(
                "truncated input: needed {N} bytes, {} left",
                self.remaining()
            )));
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        let [byte] = self.take_array::<1>()?;
        Ok(byte)
    }

    /// Reads a boolean; any byte other than 0 or 1 is malformed.
    pub fn take_bool(&mut self) -> Result<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(codec_err(format!("invalid boolean byte {other}"))),
        }
    }

    /// Reads a LEB128 varint as `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.take_u8()?;
            if shift == 63 && byte > 1 {
                return Err(codec_err("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(codec_err("varint longer than 10 bytes"));
            }
        }
    }

    /// Reads a varint, checking it fits `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let value = self.take_u64()?;
        u32::try_from(value).map_err(|_| codec_err(format!("value {value} overflows u32")))
    }

    /// Reads a varint, checking it fits `u16`.
    pub fn take_u16(&mut self) -> Result<u16> {
        let value = self.take_u64()?;
        u16::try_from(value).map_err(|_| codec_err(format!("value {value} overflows u16")))
    }

    /// Reads a varint, checking it fits `usize`.
    pub fn take_usize(&mut self) -> Result<usize> {
        let value = self.take_u64()?;
        usize::try_from(value).map_err(|_| codec_err(format!("value {value} overflows usize")))
    }

    /// Reads a sequence length, bounding it by the bytes actually left so a
    /// corrupt length cannot trigger a huge allocation.
    pub fn take_len(&mut self) -> Result<usize> {
        let len = self.take_usize()?;
        if len > self.remaining() {
            return Err(codec_err(format!(
                "sequence length {len} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Reads an `f64` from its little-endian bit pattern.
    pub fn take_f64(&mut self) -> Result<f64> {
        let bytes = self.take_array::<8>()?;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.take_usize()?;
        if self.remaining() < len {
            return Err(codec_err(format!(
                "truncated byte string: length {len}, {} bytes left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str> {
        let bytes = self.take_bytes()?;
        std::str::from_utf8(bytes).map_err(|e| codec_err(format!("invalid UTF-8 string: {e}")))
    }

    /// Reads an `Option<u64>` written by [`Encoder::put_opt_u64`].
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>> {
        if self.take_bool()? {
            Ok(Some(self.take_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Asserts that the input was fully consumed — trailing bytes mean the
    /// writer and reader disagree about the layout.
    pub fn finish(self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(codec_err(format!(
                "{} trailing bytes after decoding",
                self.remaining()
            )))
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum framing every
/// WAL record and snapshot payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

/// Continues a CRC-32 computation from a previous value.
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = !crc;
    for &byte in bytes {
        let index = ((crc ^ u32::from(byte)) & 0xff) as usize;
        crc = (crc >> 8) ^ table[index];
    }
    !crc
}

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_bool(true);
        enc.put_bool(false);
        enc.put_u64(0);
        enc.put_u64(127);
        enc.put_u64(128);
        enc.put_u64(u64::MAX);
        enc.put_u32(u32::MAX);
        enc.put_u16(u16::MAX);
        enc.put_f64(0.5);
        enc.put_f64(f64::NEG_INFINITY);
        enc.put_bytes(b"abc");
        enc.put_str("héllo");
        enc.put_opt_u64(None);
        enc.put_opt_u64(Some(42));

        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_u8().unwrap(), 7);
        assert!(dec.take_bool().unwrap());
        assert!(!dec.take_bool().unwrap());
        assert_eq!(dec.take_u64().unwrap(), 0);
        assert_eq!(dec.take_u64().unwrap(), 127);
        assert_eq!(dec.take_u64().unwrap(), 128);
        assert_eq!(dec.take_u64().unwrap(), u64::MAX);
        assert_eq!(dec.take_u32().unwrap(), u32::MAX);
        assert_eq!(dec.take_u16().unwrap(), u16::MAX);
        assert_eq!(dec.take_f64().unwrap(), 0.5);
        assert_eq!(dec.take_f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(dec.take_bytes().unwrap(), b"abc");
        assert_eq!(dec.take_str().unwrap(), "héllo");
        assert_eq!(dec.take_opt_u64().unwrap(), None);
        assert_eq!(dec.take_opt_u64().unwrap(), Some(42));
        dec.finish().unwrap();
    }

    #[test]
    fn header_accepts_older_and_rejects_newer_versions() {
        const MAGIC: [u8; 4] = *b"TVQT";
        let mut enc = Encoder::new();
        enc.put_header(MAGIC, 1);
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.check_header(MAGIC, 3).unwrap(), 1);

        let mut dec = Decoder::new(&bytes);
        let err = dec.check_header(MAGIC, 0).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        let mut dec = Decoder::new(&bytes);
        let err = dec.check_header(*b"XXXX", 3).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_input_is_a_clean_error() {
        let mut enc = Encoder::new();
        enc.put_u64(123456789);
        enc.put_bytes(&[1, 2, 3, 4, 5]);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            let a = dec.take_u64();
            let b = dec.take_bytes();
            assert!(
                a.is_err() || b.is_err(),
                "cut at {cut} of {} decoded fully",
                bytes.len()
            );
        }
    }

    #[test]
    fn overflowing_narrow_integers_are_rejected() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::from(u32::MAX) + 1);
        let bytes = enc.into_bytes();
        assert!(Decoder::new(&bytes).take_u32().is_err());

        let mut enc = Encoder::new();
        enc.put_u64(u64::from(u16::MAX) + 1);
        let bytes = enc.into_bytes();
        assert!(Decoder::new(&bytes).take_u16().is_err());
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // 11 continuation bytes can never be a valid u64 varint.
        let bytes = [0xffu8; 11];
        assert!(Decoder::new(&bytes).take_u64().is_err());
        // 10 bytes whose top byte carries more than one bit overflows too.
        let mut bytes = [0x80u8; 10];
        bytes[9] = 0x02;
        assert!(Decoder::new(&bytes).take_u64().is_err());
    }

    #[test]
    fn invalid_bool_and_utf8_are_rejected() {
        assert!(Decoder::new(&[2]).take_bool().is_err());
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xff, 0xfe]);
        let bytes = enc.into_bytes();
        assert!(Decoder::new(&bytes).take_str().is_err());
    }

    #[test]
    fn take_len_bounds_lengths_by_remaining_bytes() {
        let mut enc = Encoder::new();
        enc.put_usize(1 << 40);
        let bytes = enc.into_bytes();
        assert!(Decoder::new(&bytes).take_len().is_err());
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let dec = Decoder::new(&[1, 2, 3]);
        assert!(dec.finish().is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental computation matches one-shot.
        let a = crc32(b"hello world");
        let b = crc32_update(crc32(b"hello "), b"world");
        assert_eq!(a, b);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
