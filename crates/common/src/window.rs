//! Sliding-window specification.
//!
//! Queries in the paper are evaluated over the most recent `w` frames with a
//! duration parameter `d` (0 ≤ d ≤ w): an MCOS satisfies a query only if it
//! co-occurs in at least `d` of the window's frames. [`WindowSpec`] bundles
//! the two parameters and centralises the expiry arithmetic so every
//! maintainer treats window boundaries identically.

use crate::error::{Error, Result};
use crate::ids::FrameId;

/// A sliding-window specification: window length `w` and duration threshold
/// `d`, both measured in frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    window: usize,
    duration: usize,
}

impl WindowSpec {
    /// Creates a window specification, validating `window >= 1` and
    /// `duration <= window`.
    pub fn new(window: usize, duration: usize) -> Result<Self> {
        if window == 0 || duration > window {
            return Err(Error::InvalidWindow { window, duration });
        }
        Ok(WindowSpec { window, duration })
    }

    /// The paper's default configuration: a 300-frame window (10 seconds at
    /// 30 fps) with a 240-frame duration threshold (8 seconds).
    pub fn paper_default() -> Self {
        WindowSpec {
            window: 300,
            duration: 240,
        }
    }

    /// Window length in frames.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Duration threshold in frames.
    #[inline]
    pub fn duration(&self) -> usize {
        self.duration
    }

    /// Returns a copy with a different duration threshold.
    pub fn with_duration(self, duration: usize) -> Result<Self> {
        WindowSpec::new(self.window, duration)
    }

    /// Returns a copy with a different window length.
    pub fn with_window(self, window: usize) -> Result<Self> {
        WindowSpec::new(window, self.duration)
    }

    /// The oldest frame identifier still inside the window that ends at
    /// `current` (inclusive). With a window of `w` frames, the window at
    /// frame `i` covers frames `max(0, i - w + 1) ..= i`.
    pub fn oldest_valid(&self, current: FrameId) -> FrameId {
        FrameId(current.raw().saturating_sub(self.window as u64 - 1))
    }

    /// Whether `frame` is inside the window ending at `current`.
    pub fn contains(&self, current: FrameId, frame: FrameId) -> bool {
        frame <= current && frame >= self.oldest_valid(current)
    }

    /// Whether a state whose frame set has `count` frames satisfies the
    /// duration threshold.
    #[inline]
    pub fn satisfies_duration(&self, count: usize) -> bool {
        count >= self.duration
    }
}

impl Default for WindowSpec {
    fn default() -> Self {
        WindowSpec::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(WindowSpec::new(0, 0).is_err());
        assert!(WindowSpec::new(5, 6).is_err());
        assert!(WindowSpec::new(5, 5).is_ok());
        assert!(WindowSpec::new(1, 0).is_ok());
    }

    #[test]
    fn zero_length_windows_are_rejected_for_every_duration() {
        for duration in 0..4 {
            let err = WindowSpec::new(0, duration).unwrap_err();
            assert!(
                err.to_string().contains("window"),
                "error should name the window: {err}"
            );
        }
    }

    #[test]
    fn durations_exceeding_the_window_are_rejected() {
        for window in 1..6usize {
            assert!(WindowSpec::new(window, window).is_ok());
            for excess in 1..3usize {
                assert!(
                    WindowSpec::new(window, window + excess).is_err(),
                    "w={window}, d={}",
                    window + excess
                );
            }
        }
        // A duration of zero means "report every co-occurrence" and is valid.
        assert!(WindowSpec::new(3, 0).is_ok());
    }

    #[test]
    fn paper_default_matches_section_6() {
        let spec = WindowSpec::paper_default();
        assert_eq!(spec.window(), 300);
        assert_eq!(spec.duration(), 240);
    }

    #[test]
    fn oldest_valid_clamps_at_zero() {
        let spec = WindowSpec::new(4, 3).unwrap();
        assert_eq!(spec.oldest_valid(FrameId(2)), FrameId(0));
        assert_eq!(spec.oldest_valid(FrameId(3)), FrameId(0));
        assert_eq!(spec.oldest_valid(FrameId(4)), FrameId(1));
        assert_eq!(spec.oldest_valid(FrameId(10)), FrameId(7));
    }

    #[test]
    fn containment_matches_window_boundaries() {
        let spec = WindowSpec::new(4, 2).unwrap();
        assert!(spec.contains(FrameId(10), FrameId(7)));
        assert!(spec.contains(FrameId(10), FrameId(10)));
        assert!(!spec.contains(FrameId(10), FrameId(6)));
        assert!(!spec.contains(FrameId(10), FrameId(11)));
    }

    #[test]
    fn duration_threshold() {
        let spec = WindowSpec::new(10, 3).unwrap();
        assert!(!spec.satisfies_duration(2));
        assert!(spec.satisfies_duration(3));
        assert!(spec.satisfies_duration(10));
    }

    #[test]
    fn with_builders_revalidate() {
        let spec = WindowSpec::new(10, 3).unwrap();
        assert_eq!(spec.with_duration(5).unwrap().duration(), 5);
        assert!(spec.with_duration(11).is_err());
        assert_eq!(spec.with_window(20).unwrap().window(), 20);
        assert!(spec.with_window(2).is_err());
    }
}
