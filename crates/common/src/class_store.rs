//! The shared, reference-counted object → class store.
//!
//! The engine layer records the class of every relevant object it observes
//! so that class counts can be aggregated for query evaluation, pruning and
//! the interner's per-set count cache. Before this module existed that
//! record was a bare `FxHashMap<ObjectId, ClassId>` that only ever grew:
//! every object a feed ever observed stayed in the map forever — tens of
//! bytes per object, monotone in the feed's lifetime.
//!
//! [`ClassStore`] makes the record evictable while staying correct under
//! *sharing*:
//!
//! * **entries are reference counted** — each engine that currently tracks
//!   an object holds one reference ([`ClassStore::register`]); when the
//!   object is retired at a compaction epoch boundary the engine releases it
//!   ([`ClassStore::release`]) and the entry is evicted once the last
//!   reference drops. Multi-feed deployments that opt into one store across
//!   shards therefore never lose a mapping another shard still relies on;
//! * **classes are immutable per entry** — `register` is first-writer-wins
//!   for as long as an entry is live, mirroring the tracker contract that an
//!   object identifier keeps one class for its lifetime. An identifier that
//!   is *reused* with a different class is a new object: the lifecycle layer
//!   assigns it a fresh internal identifier (or the old one after eviction
//!   proved nothing references it), so a live entry's class never changes
//!   under anyone's feet;
//! * **evictions are observable** — [`ClassStore::evictions`] counts them,
//!   which the benches use to demonstrate the plateau.
//!
//! The store keeps the plain `ObjectId → ClassId` map intact (see
//! [`ClassStore::classes`]) so aggregation call sites
//! ([`ClassCounts::of`](crate::ClassCounts::of)) read it without any
//! per-lookup refcount indirection.

use std::sync::{Arc, RwLock};

use crate::hash::FxHashMap;
use crate::ids::{ClassId, ObjectId};

/// Reference-counted object → class map. See the [module docs](self).
#[derive(Debug)]
pub struct ClassStore {
    /// The class of every live entry (what aggregation reads).
    classes: FxHashMap<ObjectId, ClassId>,
    /// How many registrants currently hold each entry.
    refs: FxHashMap<ObjectId, u32>,
    /// Next alias identifier to mint (counts down from `u32::MAX`). Owned
    /// by the store — not by individual lifecycles — so every sharer draws
    /// from one sequence and two engines can never mint the same alias for
    /// different objects.
    next_alias: u32,
    evictions: u64,
}

impl Default for ClassStore {
    fn default() -> Self {
        ClassStore {
            classes: FxHashMap::default(),
            refs: FxHashMap::default(),
            next_alias: u32::MAX,
            evictions: 0,
        }
    }
}

impl ClassStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ClassStore::default()
    }

    /// Creates a store pre-loaded with entries, each held by one reference.
    /// Test and tooling convenience; engines build empty stores.
    pub fn preloaded(entries: impl IntoIterator<Item = (ObjectId, ClassId)>) -> Self {
        let mut store = ClassStore::new();
        for (id, class) in entries {
            store.register(id, class);
        }
        store
    }

    /// The plain `ObjectId → ClassId` view used for class-count aggregation.
    #[inline]
    pub fn classes(&self) -> &FxHashMap<ObjectId, ClassId> {
        &self.classes
    }

    /// The class of a live entry, if any.
    #[inline]
    pub fn class_of(&self, id: ObjectId) -> Option<ClassId> {
        self.classes.get(&id).copied()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the store holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Entries evicted so far (last reference released).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate bytes held by the store's maps.
    pub fn bytes(&self) -> usize {
        self.classes.capacity() * std::mem::size_of::<(ObjectId, ClassId, u64)>()
            + self.refs.capacity() * std::mem::size_of::<(ObjectId, u32, u64)>()
    }

    /// Registers one reference to `id`, recording `class` on first
    /// registration. Returns the class the entry actually holds — for a
    /// live entry this is the first writer's class (callers detecting a
    /// mismatch are seeing identifier reuse and must mint a new internal
    /// identifier rather than mutate the shared entry).
    pub fn register(&mut self, id: ObjectId, class: ClassId) -> ClassId {
        *self.refs.entry(id).or_insert(0) += 1;
        *self.classes.entry(id).or_insert(class)
    }

    /// Releases one reference to `id`, evicting the entry when the last
    /// reference drops. Releasing an unregistered identifier is a no-op
    /// (robustness: retirement lists may mention objects another layer
    /// never registered).
    pub fn release(&mut self, id: ObjectId) {
        let Some(count) = self.refs.get_mut(&id) else {
            return;
        };
        *count -= 1;
        if *count == 0 {
            self.refs.remove(&id);
            self.classes.remove(&id);
            self.evictions += 1;
        }
    }

    /// Current reference count of an entry (0 when absent).
    pub fn ref_count(&self, id: ObjectId) -> u32 {
        self.refs.get(&id).copied().unwrap_or(0)
    }

    /// Mints a fresh alias identifier, unique across every lifecycle
    /// sharing this store (aliases are never reused, even after the
    /// generation behind one retires). Identifiers currently registered —
    /// e.g. an external tracker id straying into the top of the `u32`
    /// range — are skipped, so a minted alias never collides with a live
    /// entry even in release builds; trackers should still keep external
    /// ids below [`alias_floor`](Self::alias_floor).
    pub fn mint_alias(&mut self) -> ObjectId {
        while self.refs.contains_key(&ObjectId(self.next_alias)) {
            self.next_alias -= 1;
        }
        let id = ObjectId(self.next_alias);
        self.next_alias -= 1;
        id
    }

    /// The smallest identifier the alias range has reached; every value at
    /// or above it is (or may become) an alias.
    pub fn alias_floor(&self) -> u32 {
        self.next_alias
    }

    /// Deterministic snapshot of every live entry as `(id, class, refs)`,
    /// sorted by identifier. Test hook: the model checker compares the
    /// store's observable state against its model's after every action, and
    /// a sorted tuple list is directly comparable where the internal hash
    /// maps are not — and the durability codec persists exactly this list
    /// (plus [`alias_floor`](Self::alias_floor) and
    /// [`evictions`](Self::evictions)).
    pub fn snapshot(&self) -> Vec<(ObjectId, ClassId, u32)> {
        let mut entries: Vec<(ObjectId, ClassId, u32)> = self
            .classes
            .iter()
            .map(|(&id, &class)| (id, class, self.ref_count(id)))
            .collect();
        entries.sort_unstable();
        entries
    }

    /// Rebuilds a store from a [`snapshot`](Self::snapshot) plus the alias
    /// cursor and eviction counter. `next_alias` must be restored exactly:
    /// aliases count down from `u32::MAX` and are never reused, so resetting
    /// the cursor would re-mint an alias some persisted binding already
    /// carries.
    pub fn restore(
        entries: impl IntoIterator<Item = (ObjectId, ClassId, u32)>,
        next_alias: u32,
        evictions: u64,
    ) -> Self {
        let mut store = ClassStore::new();
        for (id, class, refs) in entries {
            store.classes.insert(id, class);
            if refs > 0 {
                store.refs.insert(id, refs);
            }
        }
        store.next_alias = next_alias;
        store.evictions = evictions;
        store
    }
}

/// Shared handle to a [`ClassStore`]: the engine, its interner and its
/// pruner all read the same store; multi-feed deployments may share one
/// across shards. The lock is written only when a frame introduces
/// first-time objects or a compaction epoch retires some.
pub type SharedClassMap = Arc<RwLock<ClassStore>>;

/// Creates an empty shared store.
pub fn shared_class_store() -> SharedClassMap {
    Arc::new(RwLock::new(ClassStore::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_release_round_trip() {
        let mut store = ClassStore::new();
        assert!(store.is_empty());
        assert_eq!(store.register(ObjectId(1), ClassId(2)), ClassId(2));
        assert_eq!(store.class_of(ObjectId(1)), Some(ClassId(2)));
        assert_eq!(store.ref_count(ObjectId(1)), 1);
        assert_eq!(store.len(), 1);
        store.release(ObjectId(1));
        assert!(store.is_empty());
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.class_of(ObjectId(1)), None);
    }

    #[test]
    fn live_entries_are_first_writer_wins() {
        let mut store = ClassStore::new();
        assert_eq!(store.register(ObjectId(7), ClassId(0)), ClassId(0));
        // A second registrant with a different class sees the incumbent.
        assert_eq!(store.register(ObjectId(7), ClassId(1)), ClassId(0));
        assert_eq!(store.ref_count(ObjectId(7)), 2);
        store.release(ObjectId(7));
        assert_eq!(
            store.class_of(ObjectId(7)),
            Some(ClassId(0)),
            "entry survives while a reference remains"
        );
        store.release(ObjectId(7));
        // After eviction, the next registration is a fresh first writer.
        assert_eq!(store.register(ObjectId(7), ClassId(1)), ClassId(1));
    }

    #[test]
    fn releasing_unknown_ids_is_a_noop() {
        let mut store = ClassStore::new();
        store.release(ObjectId(9));
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn preloaded_holds_one_reference_each() {
        let mut store =
            ClassStore::preloaded([(ObjectId(1), ClassId(0)), (ObjectId(2), ClassId(1))]);
        assert_eq!(store.len(), 2);
        assert!(store.bytes() > 0);
        store.release(ObjectId(1));
        assert_eq!(store.len(), 1);
        assert_eq!(store.classes().get(&ObjectId(2)), Some(&ClassId(1)));
    }
}
