//! A fast, deterministic hasher for dense integer keys.
//!
//! The state maintainers key their hot-path maps by [`SetId`](crate::SetId)
//! handles — small dense integers — where the default SipHash hasher costs
//! more than the table probe itself. [`FxHasher`] is a hand-rolled
//! implementation of the multiply-xor scheme popularised by the Firefox/rustc
//! `FxHash` (crates.io is unavailable in this build environment, so the
//! ~20-line algorithm is reimplemented here): each word is folded into the
//! state with a rotate, an xor and a multiplication by a large odd constant.
//!
//! Unlike `RandomState`, the hasher is **deterministic across processes** —
//! identical inputs hash identically in every run — which the determinism
//! suites rely on. It is *not* DoS-resistant; keys are internal handles, not
//! attacker-controlled strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplication constant from the rustc/Firefox FxHash scheme
/// (`0x51_7c_c1_b7_27_22_0a_95` = π-derived large odd constant). Shared
/// with the interner's direct-mapped intersection cache.
pub(crate) const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The multiply-xor hasher. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_eq!(hash_of("hello"), hash_of("hello"));
        assert_eq!(hash_of((7u32, 9u32)), hash_of((7u32, 9u32)));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0u32..10_000).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000, "dense u32 keys must not collide");
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // Streams differing only in the last (non-8-aligned) bytes differ.
        assert_ne!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 4]));
        assert_ne!(
            hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 9]),
            hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 10])
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        assert_eq!(map.get(&1), Some(&"one"));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(5));
        assert!(!set.insert(5));
    }
}
