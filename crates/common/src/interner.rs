//! The per-feed object-set interner.
//!
//! Every structure in the MCOS generation layer is keyed by object sets, and
//! the same few sets are intersected, hashed and compared thousands of times
//! per window. Before this module existed, each of those operations walked an
//! `Arc<[ObjectId]>` slice: hashing a state key was O(set length), equality
//! was a slice compare, and the SSG traversal recomputed the same
//! `parent ∩ frame` intersections every frame.
//!
//! [`SetInterner`] stores each distinct [`ObjectSet`] exactly once in an
//! append-only arena and hands out dense [`SetId`] handles. Downstream
//! structures key their maps by handle, so hashing ([`FxHasher`](crate::FxHasher)
//! over a single `u32`), equality and state lookup become O(1) integer
//! operations. On top of the arena the interner:
//!
//! * **mirrors every set as a dense bitmap** — the interner owns a
//!   [`UniverseMap`] assigning each observed `ObjectId` a bit slot, and a
//!   [`BitmapArena`] holding one fixed-stride `u64` bitmap per arena entry.
//!   [`intersection_len`](SetInterner::intersection_len),
//!   [`is_subset_of`](SetInterner::is_subset_of) and
//!   [`is_disjoint_from`](SetInterner::is_disjoint_from) are word-AND +
//!   popcount loops, and the memo-miss path of
//!   [`intersect`](SetInterner::intersect) counts the overlap the same way —
//!   allocation-free; a sorted `ObjectSet` is only materialised when the
//!   result is a genuinely new set;
//! * **memoizes intersections** — a direct-mapped cache of
//!   `(SetId, SetId) → SetId` entries, normalised so the commutative pair
//!   shares one slot. Sliding windows re-present the same set pairs frame
//!   after frame, and the SSG cascade re-requests the same `parent ∩ frame`
//!   pair within one frame; a recency cache catches both at O(1) cost. The
//!   cache is **adaptively sized** ([`MemoConfig`]): it grows by doubling
//!   when the sampled miss rate shows the live pair working set has outgrown
//!   it (NAIVE on stable scenes holds far more states than any fixed size),
//!   and steps back down at compaction epochs;
//! * **caches class counts** — when constructed with a class source
//!   ([`SetInterner::with_classes`]), a [`ClassCounts`] aggregate is computed
//!   once per set, at intern time, and shared as an `Arc`. A live class
//!   entry never changes (the [`ClassStore`](crate::ClassStore) is
//!   first-writer-wins, and identifier reuse mints fresh internal ids), so
//!   counts computed at intern time stay correct for the lifetime of the
//!   set.
//!
//! Within one epoch the arena and the memo are **append-only**: interning is
//! cheap and ids stay stable, at the cost of memory that grows with the
//! number of distinct sets ever observed. For long-running unbounded-universe
//! deployments, [`SetInterner::compact`] starts a new **epoch**: the arena,
//! content index, class-count cache, bitmaps and universe map are rebuilt
//! from the caller's live handles, and a [`RemapTable`] translating old
//! handles to their new values is handed back so every handle-keyed
//! downstream structure can re-key itself. The engine triggers compaction
//! between frames when live-set occupancy falls below a configured ratio.

use std::sync::{Arc, PoisonError};

use crate::aggregates::ClassCounts;
use crate::bitmap::{BitmapArena, UniverseMap};
use crate::class_store::SharedClassMap;
use crate::hash::FxHashMap;
use crate::ids::ObjectId;
use crate::object_set::ObjectSet;

/// Dense handle of an interned [`ObjectSet`].
///
/// Handles are only meaningful relative to the [`SetInterner`] that issued
/// them — and only within the epoch that issued them: a compaction epoch
/// retires every handle it does not keep, and the accompanying
/// [`RemapTable`] is the sole bridge between epochs. `SetId::EMPTY` is
/// always the empty set, in every interner and every epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(u32);

impl SetId {
    /// The empty object set (interned at id 0 by construction).
    pub const EMPTY: SetId = SetId(0);

    /// The raw arena index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from its raw arena index. For the durability codec,
    /// which persists handles alongside the exact arena state that defines
    /// them; a handle reconstructed against any other arena is meaningless.
    #[inline]
    pub fn from_raw(raw: u32) -> SetId {
        SetId(raw)
    }

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this handle is the empty set.
    #[inline]
    pub fn is_empty_set(self) -> bool {
        self == SetId::EMPTY
    }
}

/// The `old SetId → new SetId` translation produced by one compaction epoch.
///
/// Handles the caller declared live are mapped to their new, denser ids;
/// every other handle of the previous epoch maps to `None` (the set was
/// dropped from the arena and must be re-interned if it ever reappears).
///
/// The table also carries the epoch's **retire set**: the objects whose bit
/// slots were re-densified away because no surviving set contains them.
/// Upstream layers use it to drop those identifiers from their own
/// per-object state (seen-object sets, class-store references), which is
/// what bounds the *engine-side* memory to the live window.
#[derive(Debug, Clone)]
pub struct RemapTable {
    map: Vec<Option<SetId>>,
    epoch: u64,
    live: usize,
    retired_objects: Vec<ObjectId>,
}

impl RemapTable {
    /// The new handle of a previous-epoch handle, or `None` if the set was
    /// retired by the compaction.
    #[inline]
    pub fn remap(&self, old: SetId) -> Option<SetId> {
        self.map.get(old.index()).copied().flatten()
    }

    /// The epoch this table transitions *into*.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of handles that survived (including the empty set).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Number of handles retired by the compaction.
    pub fn retired(&self) -> usize {
        self.map.len() - self.live
    }

    /// The objects retired by this epoch (no surviving set contains them),
    /// in ascending identifier order.
    pub fn retired_objects(&self) -> &[ObjectId] {
        &self.retired_objects
    }

    /// Takes ownership of the retire set (see
    /// [`retired_objects`](Self::retired_objects)), leaving it empty.
    pub fn take_retired_objects(&mut self) -> Vec<ObjectId> {
        std::mem::take(&mut self.retired_objects)
    }
}

/// Sizing and adaptation parameters of the intersection memo.
///
/// The memo is a direct-mapped `(SetId, SetId) → SetId` cache. A fixed size
/// is a bet on the live pair working set: NAIVE on a stable scene holds far
/// more states than the original 32k slots and thrashed (~2.2M misses to
/// 0.4M hits over 600 frames). The adaptive policy sizes the cache to the
/// workload instead: every [`sample_window`](Self::sample_window) probes the
/// miss rate of the window is compared against
/// [`grow_miss_rate`](Self::grow_miss_rate); one doubling per window, up to
/// [`max_bits`](Self::max_bits). Compaction epochs shrink one step back
/// toward [`initial_bits`](Self::initial_bits) (the memo is dropped there
/// anyway — its entries reference retired handles).
///
/// Resizing is semantically invisible: the memo only caches results
/// `intersect` would recompute identically, and the adaptation inputs
/// (probe/miss counts) are deterministic for deterministic feeds, so two
/// identical runs resize at identical probes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoConfig {
    /// log2 of the slot count the memo starts at (and shrinks back toward).
    pub initial_bits: u32,
    /// log2 of the largest slot count the memo may grow to.
    pub max_bits: u32,
    /// Probes per adaptation window.
    pub sample_window: u32,
    /// Grow when `window misses / window probes` exceeds this.
    pub grow_miss_rate: f64,
}

impl MemoConfig {
    /// The adaptive default: start at 4096 slots (48 KiB), grow by doubling
    /// up to 2^20 slots (12 MiB) when a 4096-probe window misses more than
    /// half the time.
    pub const fn adaptive() -> Self {
        MemoConfig {
            initial_bits: 12,
            max_bits: 20,
            sample_window: 4096,
            grow_miss_rate: 0.5,
        }
    }

    /// A fixed-size memo of `2^bits` slots (never grows, never shrinks).
    /// `fixed(15)` reproduces the pre-adaptive 32k-slot cache and serves as
    /// the baseline the `repro_id_reuse` bench compares against.
    pub const fn fixed(bits: u32) -> Self {
        MemoConfig {
            initial_bits: bits,
            max_bits: bits,
            sample_window: u32::MAX,
            grow_miss_rate: 2.0,
        }
    }

    /// Smallest slot-count exponent the memo supports (2 slots — below
    /// that the slot arithmetic degenerates).
    const MIN_BITS: u32 = 1;
    /// Largest slot-count exponent the memo supports (2^30 slots ≈ 12 GiB;
    /// a deliberate configurability cap, far above any sane setting).
    const MAX_BITS: u32 = 30;

    /// Clamps a requested exponent into the policy's (validated) range;
    /// out-of-range `initial_bits`/`max_bits` are themselves clamped to
    /// [`MIN_BITS`](Self::MIN_BITS)..=[`MAX_BITS`](Self::MAX_BITS) first,
    /// so a nonsensical config (0 bits, 99 bits) degrades gracefully
    /// instead of panicking on shift overflow.
    fn clamped_bits(&self, bits: u32) -> u32 {
        let hi = self.max_bits.clamp(Self::MIN_BITS, Self::MAX_BITS);
        let lo = self.initial_bits.clamp(Self::MIN_BITS, hi);
        bits.clamp(lo, hi)
    }
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig::adaptive()
    }
}

/// Sentinel for an unused memo slot (`a == b` pairs never reach the cache).
const MEMO_FREE: (SetId, SetId) = (SetId::EMPTY, SetId::EMPTY);

/// The object-set arena with word-parallel set algebra, intersection
/// memoization, class-count caching and epoch compaction. See the
/// [module docs](self).
#[derive(Debug, Default)]
pub struct SetInterner {
    /// Arena: `SetId` → set. Index 0 is always the empty set.
    sets: Vec<ObjectSet>,
    /// Arena-parallel cache: `SetId` → class counts at intern time.
    counts: Vec<Arc<ClassCounts>>,
    /// Content index: set → id (hashes the slice once per *distinct* set).
    by_set: FxHashMap<ObjectSet, SetId>,
    /// Arena-parallel dense bitmaps (entry `i` mirrors `sets[i]`).
    bitmaps: BitmapArena,
    /// The `ObjectId → bit slot` universe of the current epoch.
    universe: UniverseMap,
    /// Direct-mapped intersection cache: `(a, b, a ∩ b)` keyed by the
    /// normalised (smaller, larger) pair; collisions overwrite. Allocated
    /// lazily on the first intersection, cleared by compaction (its entries
    /// reference retired handles). Sized adaptively per `memo_config`.
    memo: Vec<(SetId, SetId, SetId)>,
    /// Adaptation parameters of the memo (see [`MemoConfig`]).
    memo_config: MemoConfig,
    /// log2 of the current memo slot count (0 until first allocation).
    memo_bits: u32,
    /// Probes and misses of the current adaptation window.
    memo_window_probes: u32,
    memo_window_misses: u32,
    memo_resizes: u64,
    /// The shared class store, when class counts are wanted.
    classes: Option<SharedClassMap>,
    memo_hits: u64,
    memo_misses: u64,
    memo_entries: usize,
    epoch: u64,
    /// Running total of interned slice payload bytes (kept so
    /// [`SetInterner::arena_bytes`] is O(1) — maintainers read it per frame).
    payload_bytes: usize,
}

impl SetInterner {
    /// Creates an interner without a class source: cached counts are empty
    /// and [`SetInterner::cached_counts`] returns `None`.
    pub fn new() -> Self {
        let mut interner = SetInterner::default();
        interner.insert_new(ObjectSet::empty());
        interner
    }

    /// Creates an interner that computes [`ClassCounts`] for every set at
    /// intern time from the shared object → class map.
    ///
    /// Every object of a set must already be present in the map when the set
    /// is first interned; the engine guarantees this by registering the
    /// classes of a frame's detections before the frame reaches the
    /// maintainer, and every maintained set is a subset of observed frames.
    pub fn with_classes(classes: SharedClassMap) -> Self {
        let mut interner = SetInterner {
            classes: Some(classes),
            ..SetInterner::default()
        };
        interner.insert_new(ObjectSet::empty());
        interner
    }

    /// Whether the interner was constructed with a class source.
    pub fn has_class_source(&self) -> bool {
        self.classes.is_some()
    }

    /// Sets the intersection-memo sizing policy. Must be called before the
    /// first intersection (the engine applies its configured policy at build
    /// time); changing the policy after the memo exists re-bases it at the
    /// new initial size on the next allocation.
    pub fn with_memo_config(mut self, config: MemoConfig) -> Self {
        self.memo_config = config;
        self.memo_bits = 0;
        self.memo = Vec::new();
        self.memo_entries = 0;
        self.memo_window_probes = 0;
        self.memo_window_misses = 0;
        self
    }

    /// The memo sizing policy in effect.
    pub fn memo_config(&self) -> MemoConfig {
        self.memo_config
    }

    /// Number of distinct sets interned (including the empty set).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether only the empty set has been interned.
    pub fn is_empty(&self) -> bool {
        self.sets.len() <= 1
    }

    /// Number of distinct objects in the current epoch's universe.
    pub fn universe_len(&self) -> usize {
        self.universe.len()
    }

    /// The current epoch's universe as a sorted identifier list. Test hook:
    /// the model checker asserts the universe tracks the lifecycle's
    /// registered-object set exactly (their agreement is what makes each
    /// epoch's retire set total), which needs the members, not just
    /// [`universe_len`](Self::universe_len).
    pub fn universe_object_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.universe.object_ids().collect();
        ids.sort_unstable();
        ids
    }

    /// The compaction epoch (0 until the first compaction).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The non-empty arena sets in handle order (`SetId(1)..`). This is the
    /// interner's entire persistent identity: re-interning these sets in
    /// order into a fresh interner sharing the same class store reproduces
    /// identical handles, universe slot assignments, bitmaps and cached
    /// class counts — the snapshot codec serializes exactly this list plus
    /// the epoch.
    pub fn arena_sets(&self) -> impl Iterator<Item = &ObjectSet> {
        self.sets.iter().skip(1)
    }

    /// Restores the compaction epoch on a freshly rebuilt interner (see
    /// [`arena_sets`](Self::arena_sets)); the epoch is not derivable from
    /// the arena contents, and compaction outcomes must keep numbering from
    /// where the snapshotted engine left off.
    pub fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Number of occupied intersection-cache slots.
    pub fn memo_len(&self) -> usize {
        self.memo_entries
    }

    /// How many intersections were answered from the memo (lifetime,
    /// survives compaction).
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// How many intersections missed the memo and ran the word-parallel
    /// kernel (lifetime, survives compaction).
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }

    /// Current number of memo slots (0 until the first intersection
    /// allocates the cache).
    pub fn memo_slots(&self) -> usize {
        self.memo.len()
    }

    /// How many times the memo was resized (adaptive grows plus compaction
    /// shrinks; lifetime counter).
    pub fn memo_resizes(&self) -> u64 {
        self.memo_resizes
    }

    /// Approximate bytes held by the arena: the interned slices plus the
    /// per-entry bookkeeping (arena slot, content-index entry, class-count
    /// handle). Bitmap storage is reported separately by
    /// [`SetInterner::bitmap_bytes`].
    pub fn arena_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<ObjectSet>()        // arena slot
            + std::mem::size_of::<(ObjectSet, SetId, u64)>()    // content index
            + std::mem::size_of::<Arc<ClassCounts>>(); // counts cache
        self.payload_bytes + self.sets.len() * per_entry
    }

    /// Approximate bytes held by the dense bitmaps and the universe map.
    pub fn bitmap_bytes(&self) -> usize {
        self.bitmaps.bytes() + self.universe.bytes()
    }

    /// Interns a set, returning its stable handle. The set is copied only
    /// the first time it is seen (an `ObjectSet` clone is an `Arc` bump).
    pub fn intern(&mut self, set: &ObjectSet) -> SetId {
        if set.is_empty() {
            return SetId::EMPTY;
        }
        if let Some(&id) = self.by_set.get(set) {
            return id;
        }
        self.insert_new(set.clone())
    }

    /// Looks a set up without interning it.
    pub fn get(&self, set: &ObjectSet) -> Option<SetId> {
        if set.is_empty() {
            return Some(SetId::EMPTY);
        }
        self.by_set.get(set).copied()
    }

    fn insert_new(&mut self, set: ObjectSet) -> SetId {
        debug_assert!(self.sets.len() < u32::MAX as usize, "interner arena full");
        let id = SetId(self.sets.len() as u32);
        let counts = match &self.classes {
            // Live store entries are immutable, so a poisoned lock still
            // holds usable data; recover instead of cascading panics (same
            // reasoning as the engine's LivePruner).
            Some(lock) => {
                let store = lock.read().unwrap_or_else(PoisonError::into_inner);
                Arc::new(ClassCounts::of(&set, store.classes()))
            }
            None => Arc::new(ClassCounts::new()),
        };
        let mut max_slot = 0u32;
        for object in set.iter() {
            max_slot = max_slot.max(self.universe.slot_of(object));
        }
        self.bitmaps.ensure_slot(max_slot);
        self.bitmaps.push(
            set.iter()
                .map(|object| self.universe.get(object).expect("slot just assigned")),
        );
        self.payload_bytes += set.len() * std::mem::size_of::<ObjectId>();
        self.sets.push(set.clone());
        self.counts.push(counts);
        self.by_set.insert(set, id);
        id
    }

    /// The set behind a handle.
    #[inline]
    pub fn resolve(&self, id: SetId) -> &ObjectSet {
        &self.sets[id.index()]
    }

    /// Number of objects in the set behind a handle.
    #[inline]
    pub fn len_of(&self, id: SetId) -> usize {
        self.sets[id.index()].len()
    }

    /// The class counts cached for a handle, when the interner has a class
    /// source. `None` otherwise — callers must then aggregate on demand.
    pub fn cached_counts(&self, id: SetId) -> Option<Arc<ClassCounts>> {
        if self.classes.is_some() {
            Some(Arc::clone(&self.counts[id.index()]))
        } else {
            None
        }
    }

    /// `|a ∩ b|` without materialising anything: word-AND + popcount over
    /// the two dense bitmaps.
    #[inline]
    pub fn intersection_len(&self, a: SetId, b: SetId) -> usize {
        if a == b {
            return self.len_of(a);
        }
        self.bitmaps.and_count(a.index(), b.index())
    }

    /// Whether `a ⊆ b`, word-parallel and allocation-free. Unlike routing
    /// the test through [`intersect`](Self::intersect), this never touches
    /// (or pollutes) the memo cache.
    #[inline]
    pub fn is_subset_of(&self, a: SetId, b: SetId) -> bool {
        a == b || a == SetId::EMPTY || self.bitmaps.is_subset(a.index(), b.index())
    }

    /// Whether `a ∩ b = ∅`, word-parallel and allocation-free.
    #[inline]
    pub fn is_disjoint_from(&self, a: SetId, b: SetId) -> bool {
        if a == SetId::EMPTY || b == SetId::EMPTY {
            return true;
        }
        if a == b {
            return false;
        }
        self.bitmaps.is_disjoint(a.index(), b.index())
    }

    /// Memoized intersection: `a ∩ b` as a handle.
    ///
    /// Fast paths: `a ∩ a = a` and `∅ ∩ x = ∅` never touch the cache. The
    /// cache key is normalised so `(a, b)` and `(b, a)` share one slot.
    ///
    /// A miss first *counts* the overlap word-parallel over the dense
    /// bitmaps: disjoint pairs and subset pairs (the two dominant cases on
    /// tracked feeds — a state either left the scene or is fully contained
    /// in the arriving frame) resolve to an existing handle without
    /// materialising or hashing anything. Only a *proper* new intersection
    /// pays the merge-and-intern cost.
    pub fn intersect(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        if a == SetId::EMPTY || b == SetId::EMPTY {
            return SetId::EMPTY;
        }
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if self.memo.is_empty() {
            if self.memo_bits == 0 {
                self.memo_bits = self.memo_config.clamped_bits(self.memo_config.initial_bits);
            }
            self.memo = vec![(MEMO_FREE.0, MEMO_FREE.1, SetId::EMPTY); 1usize << self.memo_bits];
        }
        let slot = Self::memo_slot(lo, hi, self.memo_bits);
        let entry = self.memo[slot];
        self.memo_window_probes += 1;
        if (entry.0, entry.1) == (lo, hi) {
            self.memo_hits += 1;
            self.maybe_adapt_memo();
            return entry.2;
        }
        self.memo_misses += 1;
        self.memo_window_misses += 1;
        let overlap = self.bitmaps.and_count(a.index(), b.index());
        let id = if overlap == 0 {
            SetId::EMPTY
        } else if overlap == self.len_of(a) {
            a
        } else if overlap == self.len_of(b) {
            b
        } else {
            let result = self.sets[a.index()].intersect(&self.sets[b.index()]);
            self.intern(&result)
        };
        if (entry.0, entry.1) == MEMO_FREE {
            self.memo_entries += 1;
        }
        self.memo[slot] = (lo, hi, id);
        self.maybe_adapt_memo();
        id
    }

    /// Multiply-folds a normalised pair into a slot index (same constant as
    /// FxHasher; the high bits carry the mix).
    #[inline]
    fn memo_slot(lo: SetId, hi: SetId, bits: u32) -> usize {
        let mix = ((u64::from(lo.0) << 32) | u64::from(hi.0)).wrapping_mul(crate::hash::K);
        (mix >> (64 - bits)) as usize
    }

    /// Closes an adaptation window when due: grows the memo one doubling
    /// when the window's miss rate exceeded the configured threshold.
    fn maybe_adapt_memo(&mut self) {
        if self.memo_window_probes < self.memo_config.sample_window {
            return;
        }
        let miss_rate =
            f64::from(self.memo_window_misses) / f64::from(self.memo_window_probes.max(1));
        self.memo_window_probes = 0;
        self.memo_window_misses = 0;
        if miss_rate > self.memo_config.grow_miss_rate && self.memo_bits < self.memo_config.max_bits
        {
            self.resize_memo(self.memo_bits + 1);
        }
    }

    /// Rehashes the memo into `2^new_bits` slots, carrying surviving
    /// entries over. Semantically invisible: only cached answers move.
    fn resize_memo(&mut self, new_bits: u32) {
        let new_bits = self.memo_config.clamped_bits(new_bits);
        if new_bits == self.memo_bits || self.memo.is_empty() {
            return;
        }
        let old = std::mem::take(&mut self.memo);
        self.memo_bits = new_bits;
        self.memo = vec![(MEMO_FREE.0, MEMO_FREE.1, SetId::EMPTY); 1usize << new_bits];
        self.memo_entries = 0;
        for (lo, hi, result) in old {
            if (lo, hi) == MEMO_FREE {
                continue;
            }
            let slot = Self::memo_slot(lo, hi, new_bits);
            if (self.memo[slot].0, self.memo[slot].1) == MEMO_FREE {
                self.memo_entries += 1;
            }
            self.memo[slot] = (lo, hi, result);
        }
        self.memo_resizes += 1;
    }

    /// Starts a new compaction epoch: rebuilds the arena, content index,
    /// class-count cache, bitmaps and universe map from the given live
    /// handles, and returns the [`RemapTable`] translating old handles to
    /// their replacements.
    ///
    /// The live list may contain duplicates and need not mention
    /// [`SetId::EMPTY`] (the empty set always survives as id 0). Surviving
    /// sets keep their relative id order, so compaction is deterministic for
    /// deterministic inputs. The universe is re-densified: objects that only
    /// occurred in retired sets lose their bit slots, which is what lets a
    /// long-running feed with object turnover plateau instead of growing
    /// monotonically.
    ///
    /// Every handle issued before the call — including those inside the
    /// intersection memo, which is cleared here — is invalid afterwards
    /// unless translated through the returned table.
    pub fn compact(&mut self, live: &[SetId]) -> RemapTable {
        let mut keep: Vec<SetId> = live
            .iter()
            .copied()
            .filter(|id| !id.is_empty_set())
            .collect();
        keep.sort_unstable();
        keep.dedup();

        let old_len = self.sets.len();
        let mut map: Vec<Option<SetId>> = vec![None; old_len];
        map[SetId::EMPTY.index()] = Some(SetId::EMPTY);

        // Snapshot the outgoing universe so the retire set (objects no
        // surviving set contains) can be reported to the engine layer.
        let mut retired_objects: Vec<ObjectId> = self.universe.object_ids().collect();

        let mut sets = Vec::with_capacity(keep.len() + 1);
        let mut counts = Vec::with_capacity(keep.len() + 1);
        sets.push(ObjectSet::empty());
        counts.push(Arc::clone(&self.counts[SetId::EMPTY.index()]));

        self.universe.clear();
        self.bitmaps.clear();
        self.bitmaps.push(std::iter::empty());
        let mut by_set = FxHashMap::default();

        for old in keep {
            let new_id = SetId(sets.len() as u32);
            let set = self.sets[old.index()].clone();
            let mut max_slot = 0u32;
            for object in set.iter() {
                max_slot = max_slot.max(self.universe.slot_of(object));
            }
            self.bitmaps.ensure_slot(max_slot);
            self.bitmaps.push(
                set.iter()
                    .map(|object| self.universe.get(object).expect("slot just assigned")),
            );
            counts.push(Arc::clone(&self.counts[old.index()]));
            by_set.insert(set.clone(), new_id);
            sets.push(set);
            map[old.index()] = Some(new_id);
        }

        self.payload_bytes = sets
            .iter()
            .map(|s| s.len() * std::mem::size_of::<ObjectId>())
            .sum();
        self.sets = sets;
        self.counts = counts;
        self.by_set = by_set;
        // The memo references retired handles; drop it wholesale (it refills
        // within a window's worth of frames) and step its size back toward
        // the configured base — the live pair working set usually shrank
        // with the arena, and a hot workload re-grows within a few windows.
        self.memo = Vec::new();
        self.memo_entries = 0;
        self.memo_window_probes = 0;
        self.memo_window_misses = 0;
        if self.memo_bits > self.memo_config.clamped_bits(self.memo_config.initial_bits) {
            self.memo_bits -= 1;
            self.memo_resizes += 1;
        }
        self.epoch += 1;

        // Objects still holding a bit slot in the rebuilt universe were not
        // retired; everything else was re-densified away.
        retired_objects.retain(|&id| self.universe.get(id).is_none());
        retired_objects.sort_unstable();

        RemapTable {
            live: self.sets.len(),
            map,
            epoch: self.epoch,
            retired_objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class_store::ClassStore;
    use crate::ids::ClassId;
    use std::sync::RwLock;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn empty_set_is_id_zero() {
        let mut interner = SetInterner::new();
        assert_eq!(interner.intern(&ObjectSet::empty()), SetId::EMPTY);
        assert!(SetId::EMPTY.is_empty_set());
        assert!(interner.resolve(SetId::EMPTY).is_empty());
        assert!(interner.is_empty());
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn interning_is_idempotent_and_content_addressed() {
        let mut interner = SetInterner::new();
        let a = interner.intern(&set(&[1, 2, 3]));
        let b = interner.intern(&set(&[3, 2, 1]));
        assert_eq!(a, b);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), &set(&[1, 2, 3]));
        assert_eq!(interner.len_of(a), 3);
        assert_eq!(interner.get(&set(&[1, 2, 3])), Some(a));
        assert_eq!(interner.get(&set(&[9])), None);
        assert_eq!(interner.universe_len(), 3);
    }

    #[test]
    fn intersect_matches_the_linear_merge() {
        let mut interner = SetInterner::new();
        let a = interner.intern(&set(&[1, 2, 3, 5]));
        let b = interner.intern(&set(&[2, 3, 4]));
        let ab = interner.intersect(a, b);
        assert_eq!(interner.resolve(ab), &set(&[2, 3]));
        // Commutative and memoized.
        assert_eq!(interner.intersect(b, a), ab);
        assert_eq!(interner.memo_len(), 1);
        assert_eq!(interner.memo_hits(), 1);
        assert_eq!(interner.memo_misses(), 1);
    }

    #[test]
    fn intersect_fast_paths_skip_the_memo() {
        let mut interner = SetInterner::new();
        let a = interner.intern(&set(&[1, 2]));
        assert_eq!(interner.intersect(a, a), a);
        assert_eq!(interner.intersect(a, SetId::EMPTY), SetId::EMPTY);
        assert_eq!(interner.intersect(SetId::EMPTY, a), SetId::EMPTY);
        assert_eq!(interner.memo_len(), 0);
    }

    #[test]
    fn subset_intersections_reuse_existing_ids() {
        let mut interner = SetInterner::new();
        let small = interner.intern(&set(&[2, 3]));
        let big = interner.intern(&set(&[1, 2, 3, 4]));
        assert_eq!(interner.intersect(small, big), small);
        assert_eq!(interner.len(), 3, "no new set for a subset intersection");
    }

    #[test]
    fn word_parallel_relations_agree_with_the_merge() {
        let mut interner = SetInterner::new();
        let a = interner.intern(&set(&[1, 2, 3, 5]));
        let b = interner.intern(&set(&[2, 3, 4]));
        let c = interner.intern(&set(&[7, 9]));
        let sub = interner.intern(&set(&[2, 3]));
        assert_eq!(interner.intersection_len(a, b), 2);
        assert_eq!(interner.intersection_len(a, a), 4);
        assert_eq!(interner.intersection_len(a, c), 0);
        assert!(interner.is_subset_of(sub, a));
        assert!(interner.is_subset_of(sub, b));
        assert!(!interner.is_subset_of(a, b));
        assert!(interner.is_subset_of(SetId::EMPTY, c));
        assert!(interner.is_disjoint_from(a, c));
        assert!(!interner.is_disjoint_from(a, b));
        assert!(interner.is_disjoint_from(SetId::EMPTY, a));
        assert!(!interner.is_disjoint_from(a, a));
        // None of the relation tests touched the memo.
        assert_eq!(interner.memo_len(), 0);
    }

    #[test]
    fn wide_universes_span_multiple_words() {
        let mut interner = SetInterner::new();
        let lo = interner.intern(&set(&[0, 1, 2]));
        let wide = interner.intern(&ObjectSet::from_raw((0..200).map(|i| i * 3)));
        let hi = interner.intern(&set(&[300, 303]));
        assert_eq!(interner.intersection_len(lo, wide), 1, "only 0 is shared");
        assert!(interner.is_subset_of(hi, wide));
        assert!(interner.is_disjoint_from(lo, hi));
        let inter = interner.intersect(lo, wide);
        assert_eq!(interner.resolve(inter), &set(&[0]));
    }

    #[test]
    fn class_counts_are_cached_at_intern_time() {
        let classes: SharedClassMap = Arc::new(RwLock::new(ClassStore::preloaded([
            (ObjectId(1), ClassId(0)),
            (ObjectId(2), ClassId(1)),
            (ObjectId(3), ClassId(1)),
        ])));
        let mut interner = SetInterner::with_classes(Arc::clone(&classes));
        assert!(interner.has_class_source());
        let id = interner.intern(&set(&[1, 2, 3]));
        let counts = interner.cached_counts(id).expect("class source present");
        assert_eq!(counts.count(ClassId(0)), 1);
        assert_eq!(counts.count(ClassId(1)), 2);
        // Cached counts are shared, not recomputed.
        let again = interner.cached_counts(id).unwrap();
        assert!(Arc::ptr_eq(&counts, &again));
    }

    #[test]
    fn no_class_source_means_no_cached_counts() {
        let mut interner = SetInterner::new();
        let id = interner.intern(&set(&[1]));
        assert!(interner.cached_counts(id).is_none());
        assert!(!interner.has_class_source());
    }

    #[test]
    fn counts_survive_a_poisoned_class_map() {
        let classes: SharedClassMap = Arc::new(RwLock::new(ClassStore::preloaded([(
            ObjectId(1),
            ClassId(2),
        )])));
        let poison = Arc::clone(&classes);
        let _ = std::thread::spawn(move || {
            let _guard = poison.write().unwrap();
            panic!("poison the class map");
        })
        .join();
        assert!(classes.is_poisoned());
        let mut interner = SetInterner::with_classes(classes);
        let id = interner.intern(&set(&[1]));
        let counts = interner.cached_counts(id).unwrap();
        assert_eq!(counts.count(ClassId(2)), 1);
    }

    #[test]
    fn adaptive_memo_grows_on_sustained_misses_and_shrinks_at_compaction() {
        let mut interner = SetInterner::new().with_memo_config(MemoConfig {
            initial_bits: 2,
            max_bits: 4,
            sample_window: 8,
            grow_miss_rate: 0.5,
        });
        // Far more distinct pairs than 4 slots: every window is miss-heavy.
        let ids: Vec<SetId> = (0..12u32)
            .map(|i| interner.intern(&set(&[i, i + 1, i + 2])))
            .collect();
        for _ in 0..4 {
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    let inter = interner.intersect(a, b);
                    // The memo (at any size) must answer like the merge.
                    let expected = interner.resolve(a).intersect(interner.resolve(b));
                    assert_eq!(interner.resolve(inter), &expected);
                }
            }
        }
        assert!(interner.memo_resizes() >= 2, "memo should have grown");
        assert_eq!(interner.memo_slots(), 16, "capped at max_bits");
        let resizes_before = interner.memo_resizes();
        let table = interner.compact(&ids);
        assert_eq!(
            interner.memo_resizes(),
            resizes_before + 1,
            "compaction shrinks one step"
        );
        assert_eq!(interner.memo_slots(), 0, "memo dropped until next use");
        // Post-shrink answers still match the merge for surviving handles.
        let a = table.remap(ids[0]).unwrap();
        let b = table.remap(ids[1]).unwrap();
        let inter = interner.intersect(a, b);
        assert_eq!(interner.resolve(inter), &set(&[1, 2]));
        assert_eq!(interner.memo_slots(), 8, "re-allocated one step smaller");
    }

    #[test]
    fn degenerate_memo_configs_are_clamped_not_panicking() {
        // 0 bits would shift by 64 without the clamp.
        let mut interner = SetInterner::new().with_memo_config(MemoConfig::fixed(0));
        let a = interner.intern(&set(&[1, 2, 3]));
        let b = interner.intern(&set(&[2, 3, 4]));
        let ab = interner.intersect(a, b);
        assert_eq!(interner.resolve(ab), &set(&[2, 3]));
        assert_eq!(interner.memo_slots(), 2, "floored at one bit");
        // Inverted ranges (initial above max) degrade gracefully too; the
        // same clamp bounds absurd exponents (e.g. 99) to MAX_BITS, which
        // would otherwise overflow `1usize << bits`.
        let mut interner = SetInterner::new().with_memo_config(MemoConfig {
            initial_bits: 10,
            max_bits: 2,
            sample_window: 4,
            grow_miss_rate: 0.0,
        });
        let a = interner.intern(&set(&[1]));
        let b = interner.intern(&set(&[1, 2]));
        assert_eq!(interner.intersect(a, b), a);
        assert_eq!(interner.memo_slots(), 4, "initial clamped down to max");
    }

    #[test]
    fn fixed_memo_never_resizes() {
        let mut interner = SetInterner::new().with_memo_config(MemoConfig::fixed(3));
        let ids: Vec<SetId> = (0..10u32)
            .map(|i| interner.intern(&set(&[i, i + 1])))
            .collect();
        for _ in 0..3 {
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    interner.intersect(a, b);
                }
            }
        }
        assert_eq!(interner.memo_resizes(), 0);
        assert_eq!(interner.memo_slots(), 8);
        assert_eq!(
            interner.memo_config(),
            MemoConfig::fixed(3),
            "config round-trips"
        );
    }

    #[test]
    fn repeated_compactions_walk_the_memo_back_to_initial_bits_and_stop() {
        let mut interner = SetInterner::new().with_memo_config(MemoConfig {
            initial_bits: 1,
            max_bits: 4,
            sample_window: 8,
            grow_miss_rate: 0.0,
        });
        let mut ids: Vec<SetId> = (0..12u32)
            .map(|i| interner.intern(&set(&[i, i + 1, i + 2])))
            .collect();
        for _ in 0..4 {
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    interner.intersect(a, b);
                }
            }
        }
        assert_eq!(interner.memo_slots(), 16, "grown to max_bits");
        // Each epoch steps the memo down exactly one doubling: 4 → 3 → 2 → 1.
        for expected_bits in [3u32, 2, 1] {
            let resizes = interner.memo_resizes();
            let table = interner.compact(&ids);
            ids = ids.iter().map(|&id| table.remap(id).unwrap()).collect();
            assert_eq!(interner.memo_resizes(), resizes + 1, "one step down");
            // Touch the memo so it re-allocates at the stepped-down size.
            interner.intersect(ids[0], ids[1]);
            assert_eq!(interner.memo_slots(), 1usize << expected_bits);
        }
        // The floor holds: once back at initial_bits, further compactions
        // stop counting as resizes and the size never goes below the floor.
        for _ in 0..3 {
            let resizes = interner.memo_resizes();
            let table = interner.compact(&ids);
            ids = ids.iter().map(|&id| table.remap(id).unwrap()).collect();
            assert_eq!(interner.memo_resizes(), resizes, "already at the floor");
            interner.intersect(ids[0], ids[1]);
            assert_eq!(interner.memo_slots(), 2, "pinned at initial_bits");
        }
    }

    #[test]
    fn fixed_memo_is_pinned_across_compaction() {
        let mut interner = SetInterner::new().with_memo_config(MemoConfig::fixed(3));
        let ids: Vec<SetId> = (0..8u32)
            .map(|i| interner.intern(&set(&[i, i + 1])))
            .collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                interner.intersect(a, b);
            }
        }
        assert_eq!(interner.memo_slots(), 8);
        let table = interner.compact(&ids);
        // Fixed means initial == max: there is no smaller size to step back
        // to, so compaction drops the (now stale) entries without resizing.
        assert_eq!(interner.memo_resizes(), 0);
        assert_eq!(interner.memo_slots(), 0, "dropped until next use");
        let a = table.remap(ids[0]).unwrap();
        let b = table.remap(ids[1]).unwrap();
        let ab = interner.intersect(a, b);
        assert_eq!(interner.resolve(ab), &set(&[1]));
        assert_eq!(interner.memo_slots(), 8, "re-allocated at the pinned size");
        assert_eq!(interner.memo_resizes(), 0);
    }

    #[test]
    fn compaction_remaps_live_handles_and_retires_the_rest() {
        let mut interner = SetInterner::new();
        let a = interner.intern(&set(&[1, 2]));
        let b = interner.intern(&set(&[3, 4]));
        let c = interner.intern(&set(&[5, 6]));
        let _ab = interner.intersect(a, b);
        assert_eq!(interner.len(), 4);
        assert_eq!(interner.universe_len(), 6);

        let table = interner.compact(&[b, c, c]);
        assert_eq!(table.epoch(), 1);
        assert_eq!(interner.epoch(), 1);
        assert_eq!(table.live(), 3, "empty + two survivors");
        assert_eq!(table.retired(), 1);
        assert_eq!(table.remap(SetId::EMPTY), Some(SetId::EMPTY));
        assert_eq!(table.remap(a), None, "retired handle");

        let new_b = table.remap(b).expect("live");
        let new_c = table.remap(c).expect("live");
        assert_eq!(interner.resolve(new_b), &set(&[3, 4]));
        assert_eq!(interner.resolve(new_c), &set(&[5, 6]));
        assert_eq!(interner.len(), 3);
        assert_eq!(
            interner.universe_len(),
            4,
            "objects 1 and 2 re-densified away"
        );
        assert_eq!(interner.memo_len(), 0, "memo dropped with the old epoch");

        // The rebuilt content index and bitmaps answer like a fresh interner.
        assert_eq!(interner.get(&set(&[3, 4])), Some(new_b));
        assert_eq!(interner.get(&set(&[1, 2])), None);
        assert!(interner.is_disjoint_from(new_b, new_c));
        let a_again = interner.intern(&set(&[1, 2]));
        assert_eq!(interner.intersection_len(a_again, new_b), 0);
        assert_eq!(interner.intersect(a_again, new_b), SetId::EMPTY);
    }

    #[test]
    fn compaction_preserves_relative_order_and_counts() {
        let classes: SharedClassMap = Arc::new(RwLock::new(ClassStore::preloaded([
            (ObjectId(1), ClassId(0)),
            (ObjectId(2), ClassId(1)),
        ])));
        let mut interner = SetInterner::with_classes(Arc::clone(&classes));
        let a = interner.intern(&set(&[1]));
        let b = interner.intern(&set(&[2]));
        let c = interner.intern(&set(&[1, 2]));
        let counts_before = interner.cached_counts(c).unwrap();

        let table = interner.compact(&[c, a, b]);
        let (na, nb, nc) = (
            table.remap(a).unwrap(),
            table.remap(b).unwrap(),
            table.remap(c).unwrap(),
        );
        assert!(na < nb && nb < nc, "survivors keep their relative order");
        // Cached counts travel with the surviving entries (same Arc).
        assert!(Arc::ptr_eq(
            &interner.cached_counts(nc).unwrap(),
            &counts_before
        ));
        assert_eq!(interner.cached_counts(na).unwrap().count(ClassId(0)), 1);
    }

    #[test]
    fn payload_bytes_track_compaction() {
        let mut interner = SetInterner::new();
        let a = interner.intern(&set(&[1, 2, 3]));
        let _b = interner.intern(&set(&[4, 5]));
        let before = interner.arena_bytes();
        let table = interner.compact(&[a]);
        assert!(interner.arena_bytes() < before);
        assert!(table.remap(a).is_some());
        assert!(interner.bitmap_bytes() > 0);
    }

    #[test]
    fn algebra_stays_correct_across_epochs() {
        let mut interner = SetInterner::new();
        let mut ids = Vec::new();
        for i in 0..10u32 {
            ids.push(interner.intern(&ObjectSet::from_raw([i, i + 1, i + 2])));
        }
        let table = interner.compact(&ids[5..]);
        let survivors: Vec<SetId> = ids[5..]
            .iter()
            .map(|&id| table.remap(id).unwrap())
            .collect();
        for (offset_a, &a) in survivors.iter().enumerate() {
            for (offset_b, &b) in survivors.iter().enumerate() {
                let sa = ObjectSet::from_raw((5 + offset_a as u32..).take(3).collect::<Vec<_>>());
                let sb = ObjectSet::from_raw((5 + offset_b as u32..).take(3).collect::<Vec<_>>());
                assert_eq!(interner.intersection_len(a, b), sa.intersection_len(&sb));
                let inter = interner.intersect(a, b);
                assert_eq!(interner.resolve(inter), &sa.intersect(&sb));
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random raw sets; see [`widen`] for how they stretch the universe.
    fn wide_sets() -> impl Strategy<Value = Vec<Vec<u32>>> {
        proptest::collection::vec(proptest::collection::vec(0u32..64, 0..24), 2..10)
    }

    /// Stretches raw ids so bitmaps span several `u64` words: most values
    /// stay in a small cluster (so overlaps actually occur) while every
    /// seventh is scattered into the hundreds, pushing its bit slot well
    /// past one word.
    fn widen(sets: &[Vec<u32>]) -> Vec<ObjectSet> {
        sets.iter()
            .map(|ids| {
                ObjectSet::from_raw(
                    ids.iter()
                        .map(|&v| if v % 7 == 0 { v * 23 + 70 } else { v }),
                )
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The word-parallel relations agree with the linear-merge oracle
        /// for every pair of interned sets, including multi-word universes.
        #[test]
        fn word_parallel_algebra_matches_the_merge_oracle(raw in wide_sets()) {
            let sets = widen(&raw);
            let mut interner = SetInterner::new();
            let ids: Vec<SetId> = sets.iter().map(|s| interner.intern(s)).collect();
            for (i, &a) in ids.iter().enumerate() {
                for (j, &b) in ids.iter().enumerate() {
                    let (sa, sb) = (&sets[i], &sets[j]);
                    prop_assert_eq!(
                        interner.intersection_len(a, b),
                        sa.intersection_len(sb),
                        "intersection_len({:?}, {:?})", sa, sb
                    );
                    prop_assert_eq!(
                        interner.is_subset_of(a, b),
                        sa.is_subset_of(sb),
                        "is_subset_of({:?}, {:?})", sa, sb
                    );
                    prop_assert_eq!(
                        interner.is_disjoint_from(a, b),
                        sa.is_disjoint_from(sb),
                        "is_disjoint_from({:?}, {:?})", sa, sb
                    );
                    let inter = interner.intersect(a, b);
                    prop_assert_eq!(interner.resolve(inter), &sa.intersect(sb));
                }
            }
        }

        /// A tiny adaptive memo — forced through grow transitions by its
        /// 8-probe window and through shrink transitions by interleaved
        /// compactions — answers every intersection exactly like the
        /// linear-merge oracle. Resizing is semantically invisible.
        #[test]
        fn adaptive_memo_agrees_with_the_merge_across_resizes(
            raw in wide_sets(),
            compact_mask in 0u32..256,
        ) {
            let sets = widen(&raw);
            let mut interner = SetInterner::new().with_memo_config(MemoConfig {
                initial_bits: 1,
                max_bits: 5,
                sample_window: 8,
                grow_miss_rate: 0.25,
            });
            let mut ids: Vec<SetId> = sets.iter().map(|s| interner.intern(s)).collect();
            for round in 0..3u32 {
                for (i, &a) in ids.iter().enumerate() {
                    for (j, &b) in ids.iter().enumerate() {
                        let inter = interner.intersect(a, b);
                        prop_assert_eq!(
                            interner.resolve(inter),
                            &sets[i].intersect(&sets[j]),
                            "pair ({}, {}) in round {} (slots {})",
                            i, j, round, interner.memo_slots()
                        );
                    }
                }
                if compact_mask & (1 << round) != 0 {
                    // Shrink transition: compact keeping everything live,
                    // then re-translate the handles.
                    let table = interner.compact(&ids);
                    for id in &mut ids {
                        *id = table.remap(*id).expect("all sets stay live");
                    }
                }
            }
        }

        /// Compacting to a random live subset preserves the algebra: every
        /// surviving pair answers exactly as before, and retired sets
        /// re-intern with correct (re-densified) bitmaps.
        #[test]
        fn compaction_preserves_the_algebra(raw in wide_sets(), keep_mask in 0u32..256) {
            let sets = widen(&raw);
            let mut interner = SetInterner::new();
            let ids: Vec<SetId> = sets.iter().map(|s| interner.intern(s)).collect();
            let live: Vec<SetId> = ids
                .iter()
                .enumerate()
                .filter(|&(i, _)| keep_mask & (1 << (i % 8)) != 0)
                .map(|(_, &id)| id)
                .collect();
            let table = interner.compact(&live);
            // Survivors keep their content and their pairwise algebra.
            for (i, &old) in ids.iter().enumerate() {
                if let Some(new) = table.remap(old) {
                    prop_assert_eq!(interner.resolve(new), &sets[i]);
                }
            }
            // Re-intern everything (retired sets get fresh handles) and
            // check the algebra against the oracle across old and new.
            let again: Vec<SetId> = sets.iter().map(|s| interner.intern(s)).collect();
            for (i, &a) in again.iter().enumerate() {
                for (j, &b) in again.iter().enumerate() {
                    let (sa, sb) = (&sets[i], &sets[j]);
                    prop_assert_eq!(interner.intersection_len(a, b), sa.intersection_len(sb));
                    prop_assert_eq!(interner.is_subset_of(a, b), sa.is_subset_of(sb));
                    prop_assert_eq!(interner.is_disjoint_from(a, b), sa.is_disjoint_from(sb));
                }
            }
        }
    }
}
