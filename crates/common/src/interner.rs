//! The per-feed object-set interner.
//!
//! Every structure in the MCOS generation layer is keyed by object sets, and
//! the same few sets are intersected, hashed and compared thousands of times
//! per window. Before this module existed, each of those operations walked an
//! `Arc<[ObjectId]>` slice: hashing a state key was O(set length), equality
//! was a slice compare, and the SSG traversal recomputed the same
//! `parent ∩ frame` intersections every frame.
//!
//! [`SetInterner`] stores each distinct [`ObjectSet`] exactly once in an
//! append-only arena and hands out dense [`SetId`] handles. Downstream
//! structures key their maps by handle, so hashing ([`FxHasher`](crate::FxHasher)
//! over a single `u32`), equality and state lookup become O(1) integer
//! operations. On top of the arena the interner:
//!
//! * **memoizes intersections** — a fixed-size, direct-mapped cache of
//!   `(SetId, SetId) → SetId` entries, normalised so the commutative pair
//!   shares one slot. Sliding windows re-present the same set pairs frame
//!   after frame (a stable scene produces the same frame set for many
//!   consecutive frames), and the SSG cascade re-requests the same
//!   `parent ∩ frame` pair within one frame; a recency cache catches both
//!   at O(1) cost and fixed memory, without the unbounded growth (and cache
//!   pollution) a full memo table would suffer on high-churn feeds;
//! * **caches class counts** — when constructed with a class source
//!   ([`SetInterner::with_classes`]), a [`ClassCounts`] aggregate is computed
//!   once per set, at intern time, and shared as an `Arc`. Object classes
//!   never change once observed (the engine's map only grows with
//!   first-writer-wins inserts), so counts computed at intern time stay
//!   correct for the lifetime of the set.
//!
//! The arena and the memo are **append-only**: interning is cheap and ids
//! stay stable, at the cost of memory that grows with the number of distinct
//! sets ever observed. For bounded-universe feeds (tracked objects with id
//! reuse) the arena saturates quickly; unbounded-universe deployments should
//! recycle the per-feed interner between sessions (the multi-feed engine
//! creates one interner per feed, so a feed restart starts fresh).

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

use crate::aggregates::ClassCounts;
use crate::hash::FxHashMap;
use crate::ids::{ClassId, ObjectId};
use crate::object_set::ObjectSet;

/// Dense handle of an interned [`ObjectSet`].
///
/// Handles are only meaningful relative to the [`SetInterner`] that issued
/// them; two interners assign ids independently. `SetId::EMPTY` is always the
/// empty set, in every interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetId(u32);

impl SetId {
    /// The empty object set (interned at id 0 by construction).
    pub const EMPTY: SetId = SetId(0);

    /// The raw arena index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this handle is the empty set.
    #[inline]
    pub fn is_empty_set(self) -> bool {
        self == SetId::EMPTY
    }
}

/// Shared object → class map, the interner's optional class source. This is
/// the same map the engine grows while ingesting frames; entries are
/// immutable once inserted.
pub type SharedClassMap = Arc<RwLock<HashMap<ObjectId, ClassId>>>;

/// log2 of the direct-mapped intersection-cache size.
const MEMO_SLOT_BITS: u32 = 15;

/// Number of slots in the direct-mapped intersection cache (power of two).
/// 32768 slots × 12 bytes ≈ 384 KiB per interner — sized for the working
/// set of pairs a sliding window keeps live.
const MEMO_SLOTS: usize = 1 << MEMO_SLOT_BITS;

/// Sentinel for an unused memo slot (`a == b` pairs never reach the cache).
const MEMO_FREE: (SetId, SetId) = (SetId::EMPTY, SetId::EMPTY);

/// The append-only object-set arena with intersection memoization and
/// class-count caching. See the [module docs](self).
#[derive(Debug, Default)]
pub struct SetInterner {
    /// Arena: `SetId` → set. Index 0 is always the empty set.
    sets: Vec<ObjectSet>,
    /// Arena-parallel cache: `SetId` → class counts at intern time.
    counts: Vec<Arc<ClassCounts>>,
    /// Content index: set → id (hashes the slice once per *distinct* set).
    by_set: FxHashMap<ObjectSet, SetId>,
    /// Direct-mapped intersection cache: `(a, b, a ∩ b)` keyed by the
    /// normalised (smaller, larger) pair; collisions overwrite. Allocated
    /// lazily on the first intersection.
    memo: Vec<(SetId, SetId, SetId)>,
    /// The growing object → class map, when class counts are wanted.
    classes: Option<SharedClassMap>,
    memo_hits: u64,
    memo_entries: usize,
}

impl SetInterner {
    /// Creates an interner without a class source: cached counts are empty
    /// and [`SetInterner::cached_counts`] returns `None`.
    pub fn new() -> Self {
        let mut interner = SetInterner::default();
        interner.insert_new(ObjectSet::empty());
        interner
    }

    /// Creates an interner that computes [`ClassCounts`] for every set at
    /// intern time from the shared object → class map.
    ///
    /// Every object of a set must already be present in the map when the set
    /// is first interned; the engine guarantees this by registering the
    /// classes of a frame's detections before the frame reaches the
    /// maintainer, and every maintained set is a subset of observed frames.
    pub fn with_classes(classes: SharedClassMap) -> Self {
        let mut interner = SetInterner {
            classes: Some(classes),
            ..SetInterner::default()
        };
        interner.insert_new(ObjectSet::empty());
        interner
    }

    /// Whether the interner was constructed with a class source.
    pub fn has_class_source(&self) -> bool {
        self.classes.is_some()
    }

    /// Number of distinct sets interned (including the empty set).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether only the empty set has been interned.
    pub fn is_empty(&self) -> bool {
        self.sets.len() <= 1
    }

    /// Number of occupied intersection-cache slots.
    pub fn memo_len(&self) -> usize {
        self.memo_entries
    }

    /// How many intersections were answered from the memo.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Interns a set, returning its stable handle. The set is copied only
    /// the first time it is seen (an `ObjectSet` clone is an `Arc` bump).
    pub fn intern(&mut self, set: &ObjectSet) -> SetId {
        if set.is_empty() {
            return SetId::EMPTY;
        }
        if let Some(&id) = self.by_set.get(set) {
            return id;
        }
        self.insert_new(set.clone())
    }

    /// Looks a set up without interning it.
    pub fn get(&self, set: &ObjectSet) -> Option<SetId> {
        if set.is_empty() {
            return Some(SetId::EMPTY);
        }
        self.by_set.get(set).copied()
    }

    fn insert_new(&mut self, set: ObjectSet) -> SetId {
        debug_assert!(self.sets.len() < u32::MAX as usize, "interner arena full");
        let id = SetId(self.sets.len() as u32);
        let counts = match &self.classes {
            // The map only grows with immutable entries, so a poisoned lock
            // still holds usable data; recover instead of cascading panics
            // (same reasoning as the engine's LivePruner).
            Some(lock) => {
                let classes = lock.read().unwrap_or_else(PoisonError::into_inner);
                Arc::new(ClassCounts::of(&set, &classes))
            }
            None => Arc::new(ClassCounts::new()),
        };
        self.sets.push(set.clone());
        self.counts.push(counts);
        self.by_set.insert(set, id);
        id
    }

    /// The set behind a handle.
    #[inline]
    pub fn resolve(&self, id: SetId) -> &ObjectSet {
        &self.sets[id.index()]
    }

    /// Number of objects in the set behind a handle.
    #[inline]
    pub fn len_of(&self, id: SetId) -> usize {
        self.sets[id.index()].len()
    }

    /// The class counts cached for a handle, when the interner has a class
    /// source. `None` otherwise — callers must then aggregate on demand.
    pub fn cached_counts(&self, id: SetId) -> Option<Arc<ClassCounts>> {
        if self.classes.is_some() {
            Some(Arc::clone(&self.counts[id.index()]))
        } else {
            None
        }
    }

    /// Memoized intersection: `a ∩ b` as a handle.
    ///
    /// Fast paths: `a ∩ a = a` and `∅ ∩ x = ∅` never touch the cache. The
    /// cache key is normalised so `(a, b)` and `(b, a)` share one slot.
    ///
    /// A miss first *counts* the overlap with an allocation-free merge:
    /// disjoint pairs and subset pairs (the two dominant cases on tracked
    /// feeds — a state either left the scene or is fully contained in the
    /// arriving frame) resolve to an existing handle without materialising
    /// or hashing anything. Only a *proper* new intersection pays the
    /// merge-and-intern cost.
    pub fn intersect(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        if a == SetId::EMPTY || b == SetId::EMPTY {
            return SetId::EMPTY;
        }
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if self.memo.is_empty() {
            self.memo = vec![(MEMO_FREE.0, MEMO_FREE.1, SetId::EMPTY); MEMO_SLOTS];
        }
        // Multiply-fold the pair into a slot index (same constant as
        // FxHasher; the high bits carry the mix).
        let mix = ((u64::from(lo.0) << 32) | u64::from(hi.0)).wrapping_mul(crate::hash::K);
        let slot = (mix >> (64 - MEMO_SLOT_BITS)) as usize;
        let entry = self.memo[slot];
        if (entry.0, entry.1) == (lo, hi) {
            self.memo_hits += 1;
            return entry.2;
        }
        let (sa, sb) = (&self.sets[a.index()], &self.sets[b.index()]);
        let overlap = sa.intersection_len(sb);
        let id = if overlap == 0 {
            SetId::EMPTY
        } else if overlap == sa.len() {
            a
        } else if overlap == sb.len() {
            b
        } else {
            let result = sa.intersect(sb);
            self.intern(&result)
        };
        if (entry.0, entry.1) == MEMO_FREE {
            self.memo_entries += 1;
        }
        self.memo[slot] = (lo, hi, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ObjectSet {
        ObjectSet::from_raw(ids.iter().copied())
    }

    #[test]
    fn empty_set_is_id_zero() {
        let mut interner = SetInterner::new();
        assert_eq!(interner.intern(&ObjectSet::empty()), SetId::EMPTY);
        assert!(SetId::EMPTY.is_empty_set());
        assert!(interner.resolve(SetId::EMPTY).is_empty());
        assert!(interner.is_empty());
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn interning_is_idempotent_and_content_addressed() {
        let mut interner = SetInterner::new();
        let a = interner.intern(&set(&[1, 2, 3]));
        let b = interner.intern(&set(&[3, 2, 1]));
        assert_eq!(a, b);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), &set(&[1, 2, 3]));
        assert_eq!(interner.len_of(a), 3);
        assert_eq!(interner.get(&set(&[1, 2, 3])), Some(a));
        assert_eq!(interner.get(&set(&[9])), None);
    }

    #[test]
    fn intersect_matches_the_linear_merge() {
        let mut interner = SetInterner::new();
        let a = interner.intern(&set(&[1, 2, 3, 5]));
        let b = interner.intern(&set(&[2, 3, 4]));
        let ab = interner.intersect(a, b);
        assert_eq!(interner.resolve(ab), &set(&[2, 3]));
        // Commutative and memoized.
        assert_eq!(interner.intersect(b, a), ab);
        assert_eq!(interner.memo_len(), 1);
        assert_eq!(interner.memo_hits(), 1);
    }

    #[test]
    fn intersect_fast_paths_skip_the_memo() {
        let mut interner = SetInterner::new();
        let a = interner.intern(&set(&[1, 2]));
        assert_eq!(interner.intersect(a, a), a);
        assert_eq!(interner.intersect(a, SetId::EMPTY), SetId::EMPTY);
        assert_eq!(interner.intersect(SetId::EMPTY, a), SetId::EMPTY);
        assert_eq!(interner.memo_len(), 0);
    }

    #[test]
    fn subset_intersections_reuse_existing_ids() {
        let mut interner = SetInterner::new();
        let small = interner.intern(&set(&[2, 3]));
        let big = interner.intern(&set(&[1, 2, 3, 4]));
        assert_eq!(interner.intersect(small, big), small);
        assert_eq!(interner.len(), 3, "no new set for a subset intersection");
    }

    #[test]
    fn class_counts_are_cached_at_intern_time() {
        let classes: SharedClassMap = Arc::new(RwLock::new(
            [
                (ObjectId(1), ClassId(0)),
                (ObjectId(2), ClassId(1)),
                (ObjectId(3), ClassId(1)),
            ]
            .into_iter()
            .collect(),
        ));
        let mut interner = SetInterner::with_classes(Arc::clone(&classes));
        assert!(interner.has_class_source());
        let id = interner.intern(&set(&[1, 2, 3]));
        let counts = interner.cached_counts(id).expect("class source present");
        assert_eq!(counts.count(ClassId(0)), 1);
        assert_eq!(counts.count(ClassId(1)), 2);
        // Cached counts are shared, not recomputed.
        let again = interner.cached_counts(id).unwrap();
        assert!(Arc::ptr_eq(&counts, &again));
    }

    #[test]
    fn no_class_source_means_no_cached_counts() {
        let mut interner = SetInterner::new();
        let id = interner.intern(&set(&[1]));
        assert!(interner.cached_counts(id).is_none());
        assert!(!interner.has_class_source());
    }

    #[test]
    fn counts_survive_a_poisoned_class_map() {
        let classes: SharedClassMap = Arc::new(RwLock::new(
            [(ObjectId(1), ClassId(2))].into_iter().collect(),
        ));
        let poison = Arc::clone(&classes);
        let _ = std::thread::spawn(move || {
            let _guard = poison.write().unwrap();
            panic!("poison the class map");
        })
        .join();
        assert!(classes.is_poisoned());
        let mut interner = SetInterner::with_classes(classes);
        let id = interner.intern(&set(&[1]));
        let counts = interner.cached_counts(id).unwrap();
        assert_eq!(counts.count(ClassId(2)), 1);
    }
}
