//! Class-count aggregates of an object set.
//!
//! Query conditions constrain *how many* objects of each class an MCOS
//! contains (step 2(a) of the evaluation procedure in Section 5.2): before a
//! state reaches the CNF evaluator, its object set is aggregated into
//! per-class counts using the feed's object → class mapping.
//!
//! This type lives in `tvq-common` (rather than the query crate) because the
//! [`SetInterner`](crate::SetInterner) caches one `ClassCounts` per interned
//! object set: the counts are computed once, when a set is first seen, and
//! every later evaluation of the same set reuses them.
//!
//! Counts are stored as a sorted `(class, count)` vector: an MCOS touches a
//! handful of classes, so a binary search over contiguous memory beats a
//! hash map and iteration order is deterministic.

use std::collections::HashMap;

use crate::ids::{ClassId, ObjectId};
use crate::object_set::ObjectSet;

/// Per-class object counts of one MCOS.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Sorted by class; counts are always non-zero.
    counts: Vec<(ClassId, u32)>,
}

impl ClassCounts {
    /// Creates empty counts (every class has zero objects).
    pub fn new() -> Self {
        ClassCounts::default()
    }

    /// Builds counts from an explicit map; zero entries are dropped.
    pub fn from_map(counts: HashMap<ClassId, u32>) -> Self {
        let mut counts: Vec<(ClassId, u32)> = counts.into_iter().filter(|&(_, n)| n > 0).collect();
        counts.sort_unstable_by_key(|&(c, _)| c);
        ClassCounts { counts }
    }

    /// Aggregates an object set using the feed-wide object → class mapping.
    /// Objects missing from the mapping are ignored (they belong to classes
    /// no query asked for and were filtered out upstream). Generic over the
    /// map's hasher so callers on the hot path can use
    /// [`FxHashMap`](crate::FxHashMap).
    pub fn of<S: std::hash::BuildHasher>(
        objects: &ObjectSet,
        classes: &HashMap<ObjectId, ClassId, S>,
    ) -> Self {
        let mut counts: Vec<(ClassId, u32)> = Vec::new();
        for id in objects.iter() {
            if let Some(&class) = classes.get(&id) {
                match counts.binary_search_by_key(&class, |&(c, _)| c) {
                    Ok(idx) => counts[idx].1 += 1,
                    Err(idx) => counts.insert(idx, (class, 1)),
                }
            }
        }
        ClassCounts { counts }
    }

    /// The count for one class (zero when absent).
    pub fn count(&self, class: ClassId) -> u32 {
        match self.counts.binary_search_by_key(&class, |&(c, _)| c) {
            Ok(idx) => self.counts[idx].1,
            Err(_) => 0,
        }
    }

    /// Iterates over `(class, count)` pairs with non-zero counts, in
    /// ascending class order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, u32)> + '_ {
        self.counts.iter().copied()
    }

    /// Total number of objects across all classes.
    pub fn total(&self) -> u32 {
        self.counts.iter().map(|&(_, n)| n).sum()
    }

    /// Whether no objects were counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_counts_by_class() {
        let classes: HashMap<ObjectId, ClassId> = [
            (ObjectId(1), ClassId(0)),
            (ObjectId(2), ClassId(1)),
            (ObjectId(3), ClassId(1)),
            (ObjectId(4), ClassId(2)),
        ]
        .into_iter()
        .collect();
        let counts = ClassCounts::of(&ObjectSet::from_raw([1, 2, 3]), &classes);
        assert_eq!(counts.count(ClassId(0)), 1);
        assert_eq!(counts.count(ClassId(1)), 2);
        assert_eq!(counts.count(ClassId(2)), 0);
        assert_eq!(counts.total(), 3);
        assert!(!counts.is_empty());
    }

    #[test]
    fn unknown_objects_are_ignored() {
        let classes: HashMap<ObjectId, ClassId> = [(ObjectId(1), ClassId(0))].into_iter().collect();
        let counts = ClassCounts::of(&ObjectSet::from_raw([1, 9]), &classes);
        assert_eq!(counts.total(), 1);
    }

    #[test]
    fn empty_object_set_has_empty_counts() {
        let counts = ClassCounts::of(&ObjectSet::empty(), &HashMap::new());
        assert!(counts.is_empty());
        assert_eq!(counts.count(ClassId(3)), 0);
        assert_eq!(counts.iter().count(), 0);
    }

    #[test]
    fn from_map_drops_zero_entries_and_sorts() {
        let counts = ClassCounts::from_map(
            [(ClassId(3), 2), (ClassId(1), 1), (ClassId(7), 0)]
                .into_iter()
                .collect(),
        );
        assert_eq!(
            counts.iter().collect::<Vec<_>>(),
            vec![(ClassId(1), 1), (ClassId(3), 2)]
        );
        assert_eq!(counts.count(ClassId(7)), 0);
        assert_eq!(counts.total(), 3);
    }

    #[test]
    fn equality_is_representation_independent() {
        let a = ClassCounts::from_map([(ClassId(1), 2), (ClassId(2), 1)].into_iter().collect());
        let classes: HashMap<ObjectId, ClassId> = [
            (ObjectId(10), ClassId(1)),
            (ObjectId(11), ClassId(1)),
            (ObjectId(12), ClassId(2)),
        ]
        .into_iter()
        .collect();
        let b = ClassCounts::of(&ObjectSet::from_raw([10, 11, 12]), &classes);
        assert_eq!(a, b);
    }
}
