//! Shared foundation types for the temporal video query engine.
//!
//! This crate contains everything the higher layers (video substrate, MCOS
//! generation, query evaluation, engine) agree on:
//!
//! * strongly typed identifiers ([`FrameId`], [`ObjectId`], [`ClassId`],
//!   [`QueryId`]) — see [`ids`];
//! * the class-label registry mapping human-readable labels such as `"car"`
//!   to dense [`ClassId`]s — see [`class`];
//! * [`ClassStore`], the reference-counted object → class store shared by an
//!   engine, its interner and its pruner (and, optionally, across multi-feed
//!   shards), with epoch-boundary eviction — see [`class_store`];
//! * [`ObjectSet`], the sorted, deduplicated object-identifier set used for
//!   every co-occurrence computation — see [`object_set`];
//! * [`SetInterner`] and [`SetId`], the per-feed object-set arena that turns
//!   set hashing/equality into integer operations, memoizes intersections,
//!   caches per-set class counts and compacts itself in epochs — see
//!   [`interner`];
//! * [`BitmapArena`] and [`UniverseMap`], the dense fixed-stride bitmaps the
//!   interner mirrors every set into so intersections, subset and
//!   disjointness tests run word-parallel — see [`bitmap`];
//! * [`ClassCounts`], the per-class aggregate of one object set that CNF
//!   queries are evaluated against — see [`aggregates`];
//! * [`FxHasher`] and the `FxHashMap`/`FxHashSet` aliases, the deterministic
//!   integer hasher behind the handle-keyed maps — see [`hash`];
//! * [`MarkedFrameSet`], the sliding-window frame set with *key frame* marks
//!   that drives early state pruning — see [`frame_set`];
//! * the structured relation `VR(fid, id, class)` extracted from a video feed
//!   — see [`relation`];
//! * sliding-window configuration ([`WindowSpec`]) — see [`window`];
//! * dataset statistics in the shape of the paper's Table 6 — see [`stats`];
//! * a small CSV reader/writer for video relations — see [`io`];
//! * the crate-wide error type — see [`error`].
//!
//! The terminology follows the paper *Evaluating Temporal Queries Over Video
//! Feeds* (Chen, Yu, Koudas): a video feed is a bounded sequence of frames,
//! object detection/tracking turns each frame into a set of `(id, class)`
//! pairs, and all downstream processing operates on those sets.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregates;
pub mod bitmap;
pub mod class;
pub mod class_store;
pub mod codec;
pub mod error;
pub mod frame_set;
pub mod hash;
pub mod ids;
pub mod interner;
pub mod io;
pub mod object_set;
pub mod relation;
pub mod stats;
pub mod window;

pub use aggregates::ClassCounts;
pub use bitmap::{BitmapArena, UniverseMap};
pub use class::{ClassLabel, ClassRegistry};
pub use class_store::{shared_class_store, ClassStore, SharedClassMap};
pub use codec::{crc32, Decoder, Encoder};
pub use error::{Error, Result};
pub use frame_set::MarkedFrameSet;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{ClassId, FeedId, FrameId, ObjectId, QueryId, TrackId};
pub use interner::{MemoConfig, RemapTable, SetId, SetInterner};
pub use object_set::ObjectSet;
pub use relation::{FrameObjects, ObjectRecord, VideoRelation};
pub use stats::DatasetStats;
pub use window::WindowSpec;
