//! Dataset statistics in the shape of the paper's Table 6.
//!
//! The paper characterises each video by five quantities: total frames,
//! total unique objects, average objects per frame (`Obj/F`), average
//! occlusions per object (`Occ/Obj`) and average frames per object
//! (`F/Obj`). These statistics drive both the synthetic dataset profiles and
//! the reproduction of Table 6, so they are computed here, directly from a
//! [`VideoRelation`].
//!
//! An *occlusion* of an object is counted exactly as the paper's tracking
//! layer observes it: a maximal gap in the object's appearance — the object
//! is visible, disappears for one or more frames, and reappears later with
//! the same identifier.

use std::collections::HashMap;
use std::fmt;

use crate::ids::{FrameId, ObjectId};
use crate::relation::VideoRelation;

/// Summary statistics of a video relation (one row of Table 6).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Total number of frames in the feed.
    pub frames: usize,
    /// Total number of unique object identifiers.
    pub objects: usize,
    /// Average number of objects per frame.
    pub objects_per_frame: f64,
    /// Average number of occlusions (appearance gaps) per object.
    pub occlusions_per_object: f64,
    /// Average number of frames in which each object appears.
    pub frames_per_object: f64,
}

impl DatasetStats {
    /// Computes the statistics of a relation.
    pub fn of(relation: &VideoRelation) -> DatasetStats {
        let frames = relation.num_frames();
        let mut appearances: HashMap<ObjectId, Vec<FrameId>> = HashMap::new();
        let mut total_detections = 0usize;
        for frame in relation.frames() {
            total_detections += frame.len();
            for id in frame.objects.iter() {
                appearances.entry(id).or_default().push(frame.fid);
            }
        }
        let objects = appearances.len();
        let mut total_occlusions = 0usize;
        let mut total_appearances = 0usize;
        for frames_of_object in appearances.values() {
            total_appearances += frames_of_object.len();
            total_occlusions += frames_of_object
                .windows(2)
                .filter(|w| w[1].raw() > w[0].raw() + 1)
                .count();
        }
        debug_assert_eq!(total_appearances, total_detections);
        let objects_f = objects.max(1) as f64;
        DatasetStats {
            frames,
            objects,
            objects_per_frame: if frames == 0 {
                0.0
            } else {
                total_detections as f64 / frames as f64
            },
            occlusions_per_object: total_occlusions as f64 / objects_f,
            frames_per_object: total_appearances as f64 / objects_f,
        }
    }

    /// Relative difference (in percent) of each statistic against a target;
    /// used to validate dataset profiles against the paper's Table 6.
    pub fn relative_error_to(&self, target: &DatasetStats) -> StatsError {
        fn rel(actual: f64, target: f64) -> f64 {
            if target == 0.0 {
                if actual == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                ((actual - target) / target).abs() * 100.0
            }
        }
        StatsError {
            frames_pct: rel(self.frames as f64, target.frames as f64),
            objects_pct: rel(self.objects as f64, target.objects as f64),
            objects_per_frame_pct: rel(self.objects_per_frame, target.objects_per_frame),
            occlusions_per_object_pct: rel(
                self.occlusions_per_object,
                target.occlusions_per_object,
            ),
            frames_per_object_pct: rel(self.frames_per_object, target.frames_per_object),
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frames={} objects={} obj/f={:.2} occ/obj={:.2} f/obj={:.2}",
            self.frames,
            self.objects,
            self.objects_per_frame,
            self.occlusions_per_object,
            self.frames_per_object
        )
    }
}

/// Per-statistic relative error (percent) between two [`DatasetStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsError {
    /// Relative error on the frame count.
    pub frames_pct: f64,
    /// Relative error on the unique-object count.
    pub objects_pct: f64,
    /// Relative error on objects per frame.
    pub objects_per_frame_pct: f64,
    /// Relative error on occlusions per object.
    pub occlusions_per_object_pct: f64,
    /// Relative error on frames per object.
    pub frames_per_object_pct: f64,
}

impl StatsError {
    /// The largest relative error across all five statistics.
    pub fn max_pct(&self) -> f64 {
        self.frames_pct
            .max(self.objects_pct)
            .max(self.objects_per_frame_pct)
            .max(self.occlusions_per_object_pct)
            .max(self.frames_per_object_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassRegistry;
    use crate::ids::ClassId;
    use crate::relation::VideoRelation;

    fn relation_from_frames(frames: &[&[u32]]) -> VideoRelation {
        let mut vr = VideoRelation::new(ClassRegistry::with_default_classes());
        for objs in frames {
            vr.push_detections(objs.iter().map(|&o| (ObjectId(o), ClassId(1))).collect());
        }
        vr
    }

    #[test]
    fn empty_relation_has_zero_stats() {
        let vr = VideoRelation::with_default_classes();
        let stats = DatasetStats::of(&vr);
        assert_eq!(stats.frames, 0);
        assert_eq!(stats.objects, 0);
        assert_eq!(stats.objects_per_frame, 0.0);
    }

    #[test]
    fn basic_counts() {
        // Object 1 appears in frames 0,1,3 (one occlusion: gap at frame 2).
        // Object 2 appears in frames 1,2,3 (no occlusion).
        let vr = relation_from_frames(&[&[1], &[1, 2], &[2], &[1, 2]]);
        let stats = DatasetStats::of(&vr);
        assert_eq!(stats.frames, 4);
        assert_eq!(stats.objects, 2);
        assert!((stats.objects_per_frame - 6.0 / 4.0).abs() < 1e-12);
        assert!((stats.occlusions_per_object - 0.5).abs() < 1e-12);
        assert!((stats.frames_per_object - 3.0).abs() < 1e-12);
    }

    #[test]
    fn occlusion_counts_each_gap_once() {
        // Object 1: frames 0, 2, 5 → two gaps.
        let vr = relation_from_frames(&[&[1], &[], &[1], &[], &[], &[1]]);
        let stats = DatasetStats::of(&vr);
        assert_eq!(stats.objects, 1);
        assert!((stats.occlusions_per_object - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_detects_mismatch() {
        let a = DatasetStats {
            frames: 100,
            objects: 10,
            objects_per_frame: 5.0,
            occlusions_per_object: 2.0,
            frames_per_object: 50.0,
        };
        let b = DatasetStats {
            frames: 100,
            objects: 20,
            objects_per_frame: 5.0,
            occlusions_per_object: 2.0,
            frames_per_object: 50.0,
        };
        let err = a.relative_error_to(&b);
        assert!((err.objects_pct - 50.0).abs() < 1e-9);
        assert_eq!(err.frames_pct, 0.0);
        assert!((err.max_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_compact() {
        let vr = relation_from_frames(&[&[1, 2], &[1]]);
        let text = DatasetStats::of(&vr).to_string();
        assert!(text.contains("frames=2"));
        assert!(text.contains("objects=2"));
    }
}
