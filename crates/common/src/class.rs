//! Class labels and the class registry.
//!
//! Queries are expressed over human-readable class labels (`"car" >= 2`)
//! while the hot path works with dense [`ClassId`]s. The [`ClassRegistry`]
//! provides the bidirectional mapping and pre-registers the four classes the
//! paper's experiments restrict detection to: person, car, truck and bus.

use std::collections::HashMap;
use std::fmt;

use crate::error::{Error, Result};
use crate::ids::ClassId;

/// A human-readable object class label.
///
/// Labels are case-insensitive (normalised to lowercase) and compared by their
/// normalised form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassLabel(String);

impl ClassLabel {
    /// Creates a label, normalising to lowercase and trimming whitespace.
    pub fn new(label: impl AsRef<str>) -> Self {
        ClassLabel(label.as_ref().trim().to_ascii_lowercase())
    }

    /// Returns the normalised label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ClassLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl<T: AsRef<str>> From<T> for ClassLabel {
    fn from(value: T) -> Self {
        ClassLabel::new(value)
    }
}

/// Registry mapping class labels to dense [`ClassId`]s.
///
/// The registry is append-only: classes are never removed, so a [`ClassId`]
/// handed out once stays valid for the lifetime of the registry.
#[derive(Debug, Clone)]
pub struct ClassRegistry {
    labels: Vec<ClassLabel>,
    by_label: HashMap<ClassLabel, ClassId>,
}

/// The class label `"person"` pre-registered by [`ClassRegistry::with_default_classes`].
pub const PERSON: &str = "person";
/// The class label `"car"` pre-registered by [`ClassRegistry::with_default_classes`].
pub const CAR: &str = "car";
/// The class label `"truck"` pre-registered by [`ClassRegistry::with_default_classes`].
pub const TRUCK: &str = "truck";
/// The class label `"bus"` pre-registered by [`ClassRegistry::with_default_classes`].
pub const BUS: &str = "bus";

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ClassRegistry {
            labels: Vec::new(),
            by_label: HashMap::new(),
        }
    }

    /// Creates a registry pre-populated with the paper's four classes
    /// (person, car, truck, bus), in that order.
    pub fn with_default_classes() -> Self {
        let mut registry = ClassRegistry::new();
        for label in [PERSON, CAR, TRUCK, BUS] {
            registry.register(label);
        }
        registry
    }

    /// Registers a class label, returning its identifier. Registering an
    /// already-known label returns the existing identifier.
    pub fn register(&mut self, label: impl Into<ClassLabel>) -> ClassId {
        let label = label.into();
        if let Some(&id) = self.by_label.get(&label) {
            return id;
        }
        let id = ClassId(
            u16::try_from(self.labels.len()).expect("more than u16::MAX registered classes"),
        );
        self.labels.push(label.clone());
        self.by_label.insert(label, id);
        id
    }

    /// Looks up the identifier for a label.
    pub fn id(&self, label: impl Into<ClassLabel>) -> Option<ClassId> {
        self.by_label.get(&label.into()).copied()
    }

    /// Looks up the identifier for a label, returning an error when unknown.
    pub fn require(&self, label: impl Into<ClassLabel>) -> Result<ClassId> {
        let label = label.into();
        self.by_label
            .get(&label)
            .copied()
            .ok_or_else(|| Error::UnknownClass(label.as_str().to_owned()))
    }

    /// Returns the label registered under `id`, if any.
    pub fn label(&self, id: ClassId) -> Option<&ClassLabel> {
        self.labels.get(id.raw() as usize)
    }

    /// Returns the label for `id` or an error when the identifier is unknown.
    pub fn require_label(&self, id: ClassId) -> Result<&ClassLabel> {
        self.label(id).ok_or(Error::UnknownClassId(id.raw()))
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over `(ClassId, &ClassLabel)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassLabel)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(idx, label)| (ClassId(idx as u16), label))
    }
}

impl Default for ClassRegistry {
    fn default() -> Self {
        ClassRegistry::with_default_classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_normalise_case_and_whitespace() {
        assert_eq!(ClassLabel::new(" Car "), ClassLabel::new("car"));
        assert_eq!(ClassLabel::new("CAR").as_str(), "car");
        assert_eq!(ClassLabel::new("Bus").to_string(), "bus");
    }

    #[test]
    fn default_registry_has_paper_classes_in_order() {
        let registry = ClassRegistry::with_default_classes();
        assert_eq!(registry.len(), 4);
        assert_eq!(registry.id("person"), Some(ClassId(0)));
        assert_eq!(registry.id("car"), Some(ClassId(1)));
        assert_eq!(registry.id("truck"), Some(ClassId(2)));
        assert_eq!(registry.id("bus"), Some(ClassId(3)));
    }

    #[test]
    fn register_is_idempotent() {
        let mut registry = ClassRegistry::new();
        let a = registry.register("car");
        let b = registry.register("CAR");
        assert_eq!(a, b);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn lookup_by_id_round_trips() {
        let mut registry = ClassRegistry::new();
        let id = registry.register("bicycle");
        assert_eq!(registry.label(id).unwrap().as_str(), "bicycle");
        assert!(registry.label(ClassId(99)).is_none());
        assert!(registry.require_label(ClassId(99)).is_err());
    }

    #[test]
    fn require_reports_unknown_labels() {
        let registry = ClassRegistry::with_default_classes();
        assert!(registry.require("car").is_ok());
        let err = registry.require("submarine").unwrap_err();
        assert!(err.to_string().contains("submarine"));
    }

    #[test]
    fn iteration_preserves_registration_order() {
        let registry = ClassRegistry::with_default_classes();
        let labels: Vec<_> = registry
            .iter()
            .map(|(_, l)| l.as_str().to_owned())
            .collect();
        assert_eq!(labels, vec!["person", "car", "truck", "bus"]);
    }

    #[test]
    fn empty_registry_reports_empty() {
        let registry = ClassRegistry::new();
        assert!(registry.is_empty());
        assert_eq!(registry.len(), 0);
    }
}
