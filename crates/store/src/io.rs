//! The storage VFS: a small path-based IO trait with a real and a
//! fault-injecting implementation.
//!
//! Durability code never touches `std::fs` directly — every write, fsync
//! and rename goes through [`StoreIo`], so the crash-recovery suite can
//! substitute [`FaultIo`] and kill the "process" at any chosen operation.
//! The trait is stateless (no open handles): appends reopen the file each
//! time. That costs a few syscalls per batch and buys an exact, replayable
//! fault model — the right trade for a correctness-first durability layer.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Path-based filesystem operations the durability layer needs.
///
/// Durability contract per operation:
///
/// * [`append`](Self::append) / [`write_file`](Self::write_file) make data
///   *visible* but not durable — a crash may lose or tear any suffix not
///   yet covered by [`fsync`](Self::fsync);
/// * [`rename`](Self::rename) is atomic (the destination is either the old
///   or the new file, never a mix); making it durable needs
///   [`fsync_dir`](Self::fsync_dir);
/// * [`truncate`](Self::truncate) discards a torn tail found on open.
pub trait StoreIo: Send + Sync {
    /// Creates a directory (and its parents) if missing.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// File names (not paths) inside `dir`; a missing directory lists empty.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Reads exactly `len` bytes starting at `offset`; `UnexpectedEof` when
    /// the range extends past the end of the file. The default reads the
    /// whole file and slices; implementations with random access (the real
    /// filesystem, the in-memory disk) override it — large consumers such
    /// as the model checker's spilled frontier depend on that.
    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let data = self.read(path)?;
        usize::try_from(offset)
            .ok()
            .and_then(|start| data.get(start..start.checked_add(len)?))
            .map(<[u8]>::to_vec)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "range past EOF"))
    }
    /// Appends bytes to a file, creating it when missing.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Creates or replaces a file with the given contents.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Truncates a file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Flushes a file's data to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Flushes a directory's entry table (makes creations/renames durable).
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Whether the path names an existing file.
    fn exists(&self, path: &Path) -> bool;
}

/// Shared handle to a [`StoreIo`] implementation.
pub type SharedIo = Arc<dyn StoreIo>;

/// The production implementation: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl RealIo {
    /// A shared handle to the real filesystem.
    pub fn shared() -> SharedIo {
        Arc::new(RealIo)
    }
}

impl StoreIo for RealIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        match std::fs::read_dir(dir) {
            Ok(entries) => {
                let mut names = Vec::new();
                for entry in entries {
                    names.push(entry?.file_name().to_string_lossy().into_owned());
                }
                Ok(names)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = std::fs::File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is a Unix-ism; opening a directory read-only and
        // syncing it is the portable-enough idiom on the platforms this
        // project targets.
        std::fs::File::open(dir)?.sync_all()
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }
}

/// What happens to the *unsynced* suffix of each file when [`FaultIo`]
/// injects a crash. Synced bytes always survive — that is what fsync means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornTail {
    /// The entire unsynced suffix is lost.
    Drop,
    /// Half of the unsynced suffix survives (a torn write).
    Tear,
    /// The whole suffix happens to survive (the kernel flushed it anyway).
    Keep,
}

impl TornTail {
    /// All tail policies, for exhaustive crash sweeps.
    pub const ALL: [TornTail; 3] = [TornTail::Drop, TornTail::Tear, TornTail::Keep];
}

#[derive(Debug, Default)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes guaranteed durable (covered by the last fsync).
    synced: usize,
}

#[derive(Debug, Default)]
struct MemState {
    files: BTreeMap<PathBuf, MemFile>,
}

impl MemState {
    fn crash(&mut self, torn: TornTail) {
        for file in self.files.values_mut() {
            let unsynced = file.data.len() - file.synced;
            let keep = match torn {
                TornTail::Drop => file.synced,
                TornTail::Tear => file.synced + unsynced / 2,
                TornTail::Keep => file.data.len(),
            };
            file.data.truncate(keep);
            file.synced = file.data.len();
        }
    }
}

/// An in-memory disk with explicit durability tracking, shared between a
/// faulty "before the crash" view and the clean "after reboot" view.
///
/// Simplifications, both documented where they matter: directories need no
/// separate durability step (renames and creations are modeled
/// atomic-and-durable once their `fsync_dir` is called — and [`FaultIo`]
/// counts that call as a crash point too), and bytes written by a single
/// `append` tear only at the granularity [`TornTail`] describes.
#[derive(Debug, Clone, Default)]
pub struct MemDisk {
    state: Arc<Mutex<MemState>>,
}

impl MemDisk {
    /// An empty in-memory disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// A clean (fault-free) view of the disk — what a process sees when it
    /// starts after a crash, or a test harness inspecting the "disk".
    pub fn io(&self) -> SharedIo {
        Arc::new(MemIo { disk: self.clone() })
    }

    /// A faulty view that injects a crash at mutating operation number
    /// `crash_at` (1-based), with the given torn-tail policy applied to
    /// every file's unsynced suffix at the moment of the crash.
    pub fn fault_io(&self, crash_at: u64, torn: TornTail) -> Arc<FaultIo> {
        Arc::new(FaultIo {
            disk: self.clone(),
            crash_at,
            torn,
            ops: AtomicU64::new(0),
        })
    }

    /// Corrupts one byte of `path` at `offset` (bit-flip), for
    /// corruption-detection tests. Returns whether the byte existed.
    pub fn flip_bit(&self, path: &Path, offset: usize) -> bool {
        let mut state = self.lock();
        match state.files.get_mut(path) {
            Some(file) if offset < file.data.len() => {
                file.data[offset] ^= 0x40;
                true
            }
            _ => false,
        }
    }

    /// Total bytes currently on the disk (test support).
    pub fn total_bytes(&self) -> usize {
        self.lock().files.values().map(|f| f.data.len()).sum()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        // The state is plain data; a panicking holder cannot leave it
        // logically torn in a way tests should hide.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Fault-free view of a [`MemDisk`].
struct MemIo {
    disk: MemDisk,
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display()))
}

impl StoreIo for MemIo {
    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let state = self.disk.lock();
        Ok(state
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name())
            .map(|n| n.to_string_lossy().into_owned())
            .collect())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = self.disk.lock();
        state
            .files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| not_found(path))
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let state = self.disk.lock();
        let file = state.files.get(path).ok_or_else(|| not_found(path))?;
        usize::try_from(offset)
            .ok()
            .and_then(|start| file.data.get(start..start.checked_add(len)?))
            .map(<[u8]>::to_vec)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "range past EOF"))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.disk.lock();
        state
            .files
            .entry(path.to_path_buf())
            .or_default()
            .data
            .extend_from_slice(bytes);
        Ok(())
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.disk.lock();
        let file = state.files.entry(path.to_path_buf()).or_default();
        file.data = bytes.to_vec();
        file.synced = 0;
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut state = self.disk.lock();
        let file = state.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.data.truncate(len as usize);
        file.synced = file.synced.min(file.data.len());
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.disk.lock();
        let mut file = state.files.remove(from).ok_or_else(|| not_found(from))?;
        // Modeled atomic and durable (see the MemDisk docs): the renamed
        // file keeps its data-durability state.
        file.synced = file.synced.min(file.data.len());
        state.files.insert(to.to_path_buf(), file);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut state = self.disk.lock();
        state
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        let mut state = self.disk.lock();
        let file = state.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.synced = file.data.len();
        Ok(())
    }

    fn fsync_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.disk.lock().files.contains_key(path)
    }
}

/// Crash-injecting view of a [`MemDisk`].
///
/// Counts *mutating* operations (append, write, truncate, rename, remove,
/// fsync, fsync_dir — each a distinct crash point); when the count reaches
/// `crash_at`, the operation does **not** happen, every file's unsynced
/// suffix is resolved per the [`TornTail`] policy, and that operation and
/// all subsequent ones fail. Reads never crash — the sweep varies only
/// where the write path dies.
pub struct FaultIo {
    disk: MemDisk,
    crash_at: u64,
    torn: TornTail,
    ops: AtomicU64,
}

impl FaultIo {
    /// Whether the injected crash point was reached.
    pub fn crashed(&self) -> bool {
        self.ops.load(Ordering::SeqCst) >= self.crash_at
    }

    /// Mutating operations observed so far (a completed run's count bounds
    /// the sweep).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst).min(self.crash_at - 1)
    }

    /// Counts one mutating op; errors if this op (or an earlier one) is the
    /// crash point.
    fn gate(&self) -> io::Result<()> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        match op.cmp(&self.crash_at) {
            std::cmp::Ordering::Less => Ok(()),
            std::cmp::Ordering::Equal => {
                self.disk.lock().crash(self.torn);
                Err(io::Error::other("injected crash"))
            }
            std::cmp::Ordering::Greater => Err(io::Error::other("process already crashed")),
        }
    }
}

impl StoreIo for FaultIo {
    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        MemIo {
            disk: self.disk.clone(),
        }
        .list(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        MemIo {
            disk: self.disk.clone(),
        }
        .read(path)
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        // Reads never crash — the sweep varies only where the write path
        // dies.
        MemIo {
            disk: self.disk.clone(),
        }
        .read_range(path, offset, len)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.gate()?;
        MemIo {
            disk: self.disk.clone(),
        }
        .append(path, bytes)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.gate()?;
        MemIo {
            disk: self.disk.clone(),
        }
        .write_file(path, bytes)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.gate()?;
        MemIo {
            disk: self.disk.clone(),
        }
        .truncate(path, len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate()?;
        MemIo {
            disk: self.disk.clone(),
        }
        .rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.gate()?;
        MemIo {
            disk: self.disk.clone(),
        }
        .remove(path)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.gate()?;
        MemIo {
            disk: self.disk.clone(),
        }
        .fsync(path)
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate()?;
        MemIo {
            disk: self.disk.clone(),
        }
        .fsync_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.disk.lock().files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_disk_round_trips_files() {
        let disk = MemDisk::new();
        let io = disk.io();
        let dir = Path::new("/data");
        let file = dir.join("a.log");
        io.append(&file, b"hello ").unwrap();
        io.append(&file, b"world").unwrap();
        assert_eq!(io.read(&file).unwrap(), b"hello world");
        assert_eq!(io.list(dir).unwrap(), vec!["a.log".to_owned()]);
        io.truncate(&file, 5).unwrap();
        assert_eq!(io.read(&file).unwrap(), b"hello");
        io.rename(&file, &dir.join("b.log")).unwrap();
        assert!(!io.exists(&file));
        io.remove(&dir.join("b.log")).unwrap();
        assert_eq!(io.list(dir).unwrap(), Vec::<String>::new());
        assert!(io.read(&file).is_err());
    }

    #[test]
    fn crash_preserves_synced_prefix_only() {
        for (torn, expect) in [
            (TornTail::Drop, &b"durable"[..]),
            (TornTail::Tear, &b"durable vol"[..]),
            (TornTail::Keep, &b"durable volatile"[..]),
        ] {
            let disk = MemDisk::new();
            let file = Path::new("/d/wal.log").to_path_buf();
            // 3 ops: append, fsync, append; crash on op 4.
            let faulty = disk.fault_io(4, torn);
            faulty.append(&file, b"durable").unwrap();
            faulty.fsync(&file).unwrap();
            faulty.append(&file, b" volatile").unwrap();
            assert!(!faulty.crashed());
            assert!(faulty.append(&file, b" lost").is_err());
            assert!(faulty.crashed());
            assert!(faulty.fsync(&file).is_err(), "all ops fail after death");
            assert_eq!(disk.io().read(&file).unwrap(), expect, "{torn:?}");
        }
    }

    #[test]
    fn unsynced_rewrites_are_lost_whole() {
        let disk = MemDisk::new();
        let file = Path::new("/d/snap.tmp").to_path_buf();
        let faulty = disk.fault_io(2, TornTail::Drop);
        faulty.write_file(&file, b"never synced").unwrap();
        assert!(faulty.write_file(&file, b"boom").is_err());
        assert_eq!(disk.io().read(&file).unwrap(), b"");
    }

    #[test]
    fn read_range_slices_and_rejects_out_of_bounds() {
        let disk = MemDisk::new();
        let io = disk.io();
        let file = Path::new("/d/r").to_path_buf();
        io.append(&file, b"0123456789").unwrap();
        assert_eq!(io.read_range(&file, 3, 4).unwrap(), b"3456");
        assert_eq!(io.read_range(&file, 0, 0).unwrap(), b"");
        assert_eq!(io.read_range(&file, 10, 0).unwrap(), b"");
        assert_eq!(
            io.read_range(&file, 8, 3).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(
            io.read_range(&file, 11, 0).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // The faulty view reads without burning a crash-point op.
        let faulty = disk.fault_io(1, TornTail::Drop);
        assert_eq!(faulty.read_range(&file, 3, 4).unwrap(), b"3456");
        assert!(!faulty.crashed());
    }

    #[test]
    fn real_io_read_range_matches_default() {
        let dir = std::env::temp_dir().join(format!("tvq-io-range-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("r.bin");
        let io = RealIo;
        io.write_file(&file, b"abcdefgh").unwrap();
        assert_eq!(io.read_range(&file, 2, 3).unwrap(), b"cde");
        assert_eq!(
            io.read_range(&file, 7, 2).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_corrupt_in_place() {
        let disk = MemDisk::new();
        let file = Path::new("/d/x").to_path_buf();
        disk.io().append(&file, b"abc").unwrap();
        assert!(disk.flip_bit(&file, 1));
        assert_eq!(disk.io().read(&file).unwrap(), b"a\x22c");
        assert!(!disk.flip_bit(&file, 9));
    }
}
