//! The write-ahead log: length-prefixed, CRC-checksummed, segmented.
//!
//! On-disk format — each segment `wal-<startseq>.log` is a run of records:
//!
//! ```text
//! +----------------+----------------+----------------------------+
//! | len: u32 LE    | crc: u32 LE    | payload (len bytes)        |
//! +----------------+----------------+----------------------------+
//! payload = varint(seq) ++ body
//! ```
//!
//! `crc` is CRC-32 over the payload. Sequence numbers start at 1 and are
//! contiguous; the segment's file name records the sequence of its first
//! record, so pruned prefixes never create an apparent gap.
//!
//! The discipline callers follow is *apply, [`Wal::append`], [`Wal::sync`],
//! acknowledge*: a record reaches the log only for operations that already
//! succeeded in memory (so replay never re-executes a rejected operation),
//! and the fsync lands before the caller sees `Ok`. On
//! [`Wal::open`] the log is scanned front to back: an invalid record at the
//! **tail of the last segment** is a torn write — the tail is truncated and
//! the loss reported in [`WalOpenReport`] — while an invalid record *in
//! front of valid data* (an earlier segment, or a CRC-valid record carrying
//! the wrong sequence) means acknowledged history is damaged, and `open`
//! refuses with [`Error::Corrupt`] rather than silently replaying around it.

use std::path::{Path, PathBuf};

use tvq_common::codec::{crc32, Decoder, Encoder};
use tvq_common::{Error, Result};

use crate::io::SharedIo;

/// Byte size at which the active segment is closed and a new one started.
pub const DEFAULT_ROTATE_BYTES: usize = 1 << 20;

const FRAME_HEADER: usize = 8;

fn store_err(context: &str, err: std::io::Error) -> Error {
    Error::Store(format!("{context}: {err}"))
}

#[derive(Debug)]
struct Segment {
    start_seq: u64,
    path: PathBuf,
    len: usize,
}

fn segment_name(start_seq: u64) -> String {
    format!("wal-{start_seq:020}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// What [`Wal::open`] found: how much history survived and what, if
/// anything, was truncated as a torn tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalOpenReport {
    /// Sequence of the last valid record (0 when the log is empty).
    pub last_seq: u64,
    /// Valid records found across all segments.
    pub records: u64,
    /// Bytes discarded from the last segment's torn tail.
    pub truncated_bytes: u64,
    /// Why the tail was truncated, when it was.
    pub truncation: Option<String>,
}

/// A segmented write-ahead log over a [`StoreIo`](crate::io::StoreIo).
pub struct Wal {
    io: SharedIo,
    dir: PathBuf,
    segments: Vec<Segment>,
    next_seq: u64,
    rotate_bytes: usize,
    records: u64,
    bytes: u64,
    fsyncs: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("segments", &self.segments)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Opens (or creates) the log in `dir`, scanning and validating every
    /// segment. Truncates a torn tail on the last segment; refuses to open
    /// a log whose interior is corrupt.
    pub fn open(io: SharedIo, dir: &Path) -> Result<(Wal, WalOpenReport)> {
        io.create_dir_all(dir)
            .map_err(|e| store_err("create wal dir", e))?;
        let mut starts: Vec<u64> = io
            .list(dir)
            .map_err(|e| store_err("list wal dir", e))?
            .iter()
            .filter_map(|name| parse_segment_name(name))
            .collect();
        starts.sort_unstable();

        let mut wal = Wal {
            io,
            dir: dir.to_path_buf(),
            segments: Vec::new(),
            next_seq: 1,
            rotate_bytes: DEFAULT_ROTATE_BYTES,
            records: 0,
            bytes: 0,
            fsyncs: 0,
        };
        let mut report = WalOpenReport::default();

        // A pruned log's first retained segment starts past seq 1; whether
        // the snapshot on hand covers the gap is the caller's check.
        if let Some(&first) = starts.first() {
            wal.next_seq = first;
        }
        for (index, &start_seq) in starts.iter().enumerate() {
            let last = index + 1 == starts.len();
            let path = dir.join(segment_name(start_seq));
            if start_seq != wal.next_seq {
                return Err(Error::Corrupt(format!(
                    "wal segment {} starts at seq {start_seq} but seq {} was expected",
                    path.display(),
                    wal.next_seq
                )));
            }
            let data = wal
                .io
                .read(&path)
                .map_err(|e| store_err("read wal segment", e))?;
            let (valid_len, records, failure) = wal.scan_segment(&data)?;
            if let Some(reason) = failure {
                if !last {
                    return Err(Error::Corrupt(format!(
                        "wal segment {} is damaged before later segments: {reason}",
                        path.display()
                    )));
                }
                report.truncated_bytes = (data.len() - valid_len) as u64;
                report.truncation = Some(reason);
                wal.io
                    .truncate(&path, valid_len as u64)
                    .map_err(|e| store_err("truncate torn wal tail", e))?;
            }
            report.records += records;
            wal.segments.push(Segment {
                start_seq,
                path,
                len: valid_len,
            });
        }

        report.last_seq = wal.next_seq - 1;
        Ok((wal, report))
    }

    /// Validates a segment's bytes, advancing `self.next_seq` past every
    /// valid record. Returns the valid byte prefix, the record count, and
    /// the torn-tail reason if the segment does not parse to its end.
    /// CRC-valid records carrying an unexpected sequence are not a torn
    /// tail — they fail hard.
    fn scan_segment(&mut self, data: &[u8]) -> Result<(usize, u64, Option<String>)> {
        let mut pos = 0usize;
        let mut records = 0u64;
        while pos < data.len() {
            if data.len() - pos < FRAME_HEADER {
                return Ok((pos, records, Some("truncated record header".into())));
            }
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            if data.len() - pos - FRAME_HEADER < len {
                return Ok((pos, records, Some("truncated record payload".into())));
            }
            let payload = &data[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
            if crc32(payload) != crc {
                return Ok((
                    pos,
                    records,
                    Some(format!("record checksum mismatch at seq {}", self.next_seq)),
                ));
            }
            let mut dec = Decoder::new(payload);
            let seq = dec
                .take_u64()
                .map_err(|e| Error::Corrupt(format!("wal record sequence: {e}")))?;
            if seq != self.next_seq {
                return Err(Error::Corrupt(format!(
                    "wal record carries seq {seq} where seq {} was expected",
                    self.next_seq
                )));
            }
            self.next_seq += 1;
            records += 1;
            pos += FRAME_HEADER + len;
        }
        Ok((pos, records, None))
    }

    /// Appends a record with the next sequence number, rotating to a fresh
    /// segment first when the active one is full. Returns the sequence
    /// assigned. The record is *visible* but not durable until [`sync`].
    ///
    /// [`sync`]: Wal::sync
    pub fn append(&mut self, body: &[u8]) -> Result<u64> {
        let seq = self.next_seq;
        if self
            .segments
            .last()
            .is_none_or(|seg| seg.len >= self.rotate_bytes)
        {
            self.rotate()?;
        }
        let mut payload = Encoder::with_capacity(body.len() + 10);
        payload.put_u64(seq);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len() + body.len());
        frame.extend_from_slice(&u32::to_le_bytes((payload.len() + body.len()) as u32));
        frame.extend_from_slice(&u32::to_le_bytes(crc32_pair(payload.as_bytes(), body)));
        frame.extend_from_slice(payload.as_bytes());
        frame.extend_from_slice(body);

        let segment = self.segments.last_mut().expect("rotate ensured a segment");
        self.io
            .append(&segment.path, &frame)
            .map_err(|e| store_err("append wal record", e))?;
        segment.len += frame.len();
        self.next_seq += 1;
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(seq)
    }

    /// Fsyncs the active segment, making every appended record durable.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(segment) = self.segments.last() {
            self.io
                .fsync(&segment.path)
                .map_err(|e| store_err("fsync wal segment", e))?;
            self.fsyncs += 1;
        }
        Ok(())
    }

    /// Closes the active segment (fsyncing it — rotation must never leave a
    /// torn tail mid-log) and registers a fresh one.
    fn rotate(&mut self) -> Result<()> {
        self.sync()?;
        let path = self.dir.join(segment_name(self.next_seq));
        self.io
            .write_file(&path, &[])
            .map_err(|e| store_err("create wal segment", e))?;
        self.io
            .fsync_dir(&self.dir)
            .map_err(|e| store_err("fsync wal dir", e))?;
        self.fsyncs += 1;
        self.segments.push(Segment {
            start_seq: self.next_seq,
            path,
            len: 0,
        });
        Ok(())
    }

    /// Reads every record with sequence strictly greater than `after_seq`,
    /// in order, returning `(seq, body)` pairs. Records are re-validated —
    /// corruption introduced since `open` surfaces as [`Error::Corrupt`].
    pub fn read_from(&self, after_seq: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        for (index, segment) in self.segments.iter().enumerate() {
            // A non-last segment's records all precede the next segment's
            // start, so a segment wholly below the cut is skipped unread.
            if self
                .segments
                .get(index + 1)
                .is_some_and(|next| next.start_seq <= after_seq + 1)
            {
                continue;
            }
            let data = self
                .io
                .read(&segment.path)
                .map_err(|e| store_err("read wal segment", e))?;
            let mut pos = 0usize;
            let mut expect = segment.start_seq;
            while pos < segment.len.min(data.len()) {
                if data.len() - pos < FRAME_HEADER {
                    return Err(Error::Corrupt("wal record header vanished".into()));
                }
                let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
                let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
                if data.len() - pos - FRAME_HEADER < len {
                    return Err(Error::Corrupt("wal record payload vanished".into()));
                }
                let payload = &data[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
                if crc32(payload) != crc {
                    return Err(Error::Corrupt(format!(
                        "wal record checksum mismatch at seq {expect}"
                    )));
                }
                let mut dec = Decoder::new(payload);
                let seq = dec
                    .take_u64()
                    .map_err(|e| Error::Corrupt(format!("wal record sequence: {e}")))?;
                if seq != expect {
                    return Err(Error::Corrupt(format!(
                        "wal record carries seq {seq} where seq {expect} was expected"
                    )));
                }
                if seq > after_seq {
                    out.push((seq, payload[payload.len() - dec.remaining()..].to_vec()));
                }
                expect += 1;
                pos += FRAME_HEADER + len;
            }
        }
        Ok(out)
    }

    /// Drops whole segments whose every record has sequence ≤ `seq` (the
    /// prefix a snapshot now covers). The active segment is always kept.
    /// Returns the number of segments removed.
    pub fn prune_through(&mut self, seq: u64) -> Result<usize> {
        let mut removed = 0;
        while self.segments.len() > 1 {
            // A segment's records end just before the next segment's start.
            if self.segments[1].start_seq > seq + 1 {
                break;
            }
            let dead = self.segments.remove(0);
            self.io
                .remove(&dead.path)
                .map_err(|e| store_err("remove pruned wal segment", e))?;
            removed += 1;
        }
        if removed > 0 {
            self.io
                .fsync_dir(&self.dir)
                .map_err(|e| store_err("fsync wal dir", e))?;
            self.fsyncs += 1;
        }
        Ok(removed)
    }

    /// Sequence the next appended record will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Start sequence of the first retained segment, when any segment
    /// exists. Recovery checks it against the snapshot on hand: a first
    /// segment starting past `snapshot seq + 1` means replayable history
    /// was lost.
    pub fn first_seq(&self) -> Option<u64> {
        self.segments.first().map(|segment| segment.start_seq)
    }

    /// Sets the segment rotation threshold (bytes).
    pub fn set_rotate_bytes(&mut self, bytes: usize) {
        self.rotate_bytes = bytes.max(FRAME_HEADER);
    }

    /// Live segment count.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Records appended through this handle.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Bytes appended through this handle (framing included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Fsync calls issued through this handle (segments and directory).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

/// CRC-32 over the concatenation of two slices without copying them.
fn crc32_pair(a: &[u8], b: &[u8]) -> u32 {
    tvq_common::codec::crc32_update(crc32(a), b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemDisk;

    fn dir() -> PathBuf {
        PathBuf::from("/wal")
    }

    #[test]
    fn append_sync_reopen_round_trips() {
        let disk = MemDisk::new();
        let (mut wal, report) = Wal::open(disk.io(), &dir()).unwrap();
        assert_eq!(report, WalOpenReport::default());
        for body in [b"alpha".as_slice(), b"beta", b"gamma"] {
            wal.append(body).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.records_written(), 3);
        assert!(wal.fsyncs() >= 1);

        let (wal, report) = Wal::open(disk.io(), &dir()).unwrap();
        assert_eq!(report.last_seq, 3);
        assert_eq!(report.records, 3);
        assert_eq!(report.truncation, None);
        let all = wal.read_from(0).unwrap();
        assert_eq!(
            all,
            vec![
                (1, b"alpha".to_vec()),
                (2, b"beta".to_vec()),
                (3, b"gamma".to_vec()),
            ]
        );
        assert_eq!(wal.read_from(2).unwrap(), vec![(3, b"gamma".to_vec())]);
        assert_eq!(wal.next_seq(), 4);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let disk = MemDisk::new();
        let (mut wal, _) = Wal::open(disk.io(), &dir()).unwrap();
        wal.append(b"kept").unwrap();
        wal.sync().unwrap();
        wal.append(b"torn-record-body").unwrap();
        drop(wal);
        // Simulate the crash: the unsynced suffix is half-lost.
        let path = dir().join(segment_name(1));
        let full = disk.io().read(&path).unwrap();
        let synced = full.len() - b"torn-record-body".len() - FRAME_HEADER - 1;
        disk.io().truncate(&path, (synced + 4) as u64).unwrap();

        let (wal, report) = Wal::open(disk.io(), &dir()).unwrap();
        assert_eq!(report.last_seq, 1);
        assert!(report.truncated_bytes > 0);
        assert!(report.truncation.is_some(), "{report:?}");
        assert_eq!(wal.read_from(0).unwrap(), vec![(1, b"kept".to_vec())]);
    }

    #[test]
    fn checksum_mismatch_at_tail_truncates_mid_log_fails() {
        let disk = MemDisk::new();
        let (mut wal, _) = Wal::open(disk.io(), &dir()).unwrap();
        wal.set_rotate_bytes(1); // rotate on every append
        wal.append(b"first").unwrap();
        wal.append(b"second").unwrap();
        wal.sync().unwrap();

        // Flip a payload bit in the last segment: torn tail, truncated.
        let seg2 = dir().join(segment_name(2));
        let len = disk.io().read(&seg2).unwrap().len();
        assert!(disk.flip_bit(&seg2, len - 1));
        let (_, report) = Wal::open(disk.io(), &dir()).unwrap();
        assert_eq!(report.last_seq, 1);
        assert!(report
            .truncation
            .as_deref()
            .is_some_and(|r| r.contains("checksum")));

        // Now damage the *first* segment: corruption in front of valid
        // data must refuse to open, not silently drop records.
        let seg1 = dir().join(segment_name(1));
        assert!(disk.flip_bit(&seg1, 12));
        let err = Wal::open(disk.io(), &dir()).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn rotation_and_prune_drop_covered_segments() {
        let disk = MemDisk::new();
        let (mut wal, _) = Wal::open(disk.io(), &dir()).unwrap();
        wal.set_rotate_bytes(24);
        for i in 0..10u8 {
            wal.append(&[i; 16]).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count() > 2, "{}", wal.segment_count());

        let removed = wal.prune_through(5).unwrap();
        assert!(removed > 0);
        // Everything after the cut is still replayable…
        let tail = wal.read_from(5).unwrap();
        assert_eq!(
            tail.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9, 10]
        );
        // …and a reopen sees a log that simply starts later.
        let (wal, report) = Wal::open(disk.io(), &dir()).unwrap();
        assert_eq!(report.last_seq, 10);
        assert_eq!(wal.read_from(0).unwrap().len(), report.records as usize);
        assert!(report.records < 10);
    }

    #[test]
    fn record_with_wrong_sequence_is_corrupt_not_torn() {
        let disk = MemDisk::new();
        let (mut wal, _) = Wal::open(disk.io(), &dir()).unwrap();
        wal.append(b"one").unwrap();
        wal.sync().unwrap();
        drop(wal);

        // Hand-craft a CRC-valid record with a bogus sequence.
        let mut payload = Encoder::new();
        payload.put_u64(7);
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::to_le_bytes(payload.len() as u32));
        frame.extend_from_slice(&u32::to_le_bytes(crc32(payload.as_bytes())));
        frame.extend_from_slice(payload.as_bytes());
        disk.io()
            .append(&dir().join(segment_name(1)), &frame)
            .unwrap();

        let err = Wal::open(disk.io(), &dir()).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn empty_bodies_and_empty_segments_reopen_cleanly() {
        let disk = MemDisk::new();
        let (mut wal, _) = Wal::open(disk.io(), &dir()).unwrap();
        wal.set_rotate_bytes(1);
        wal.append(b"").unwrap();
        wal.append(b"x").unwrap();
        wal.sync().unwrap();
        // A fresh segment file can exist with no records yet (crash between
        // rotation and the first append into the new segment).
        disk.io()
            .write_file(&dir().join(segment_name(3)), &[])
            .unwrap();
        let (mut wal, report) = Wal::open(disk.io(), &dir()).unwrap();
        assert_eq!(report.last_seq, 2);
        assert_eq!(wal.append(b"y").unwrap(), 3);
        wal.sync().unwrap();
        assert_eq!(
            wal.read_from(0)
                .unwrap()
                .into_iter()
                .map(|(_, body)| body)
                .collect::<Vec<_>>(),
            vec![b"".to_vec(), b"x".to_vec(), b"y".to_vec()]
        );
    }
}
