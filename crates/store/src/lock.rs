//! Exclusive ownership of a data directory.
//!
//! Two engines writing one WAL interleave records and destroy the log, so
//! a data directory must be opened by at most one engine at a time. The
//! guard is two-layered:
//!
//! * a **process-wide registry** of held directories catches double-opens
//!   inside one process (the common hazard in tests, where many engines
//!   share one [`MemDisk`](crate::io::MemDisk));
//! * a **`LOCK` file** holding the owner's pid catches a second process.
//!   A leftover `LOCK` whose pid no longer runs (checked via `/proc`) is
//!   stale — crashes must not brick the store — and is reclaimed.
//!
//! Dropping the [`DirLock`] releases both layers; the file removal is
//! best-effort, since the stale check makes a leaked `LOCK` harmless.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock, PoisonError};

use tvq_common::{Error, Result};

use crate::io::SharedIo;

const LOCK_FILE: &str = "LOCK";

fn held() -> &'static Mutex<BTreeSet<PathBuf>> {
    static HELD: OnceLock<Mutex<BTreeSet<PathBuf>>> = OnceLock::new();
    HELD.get_or_init(|| Mutex::new(BTreeSet::new()))
}

fn pid_is_live(pid: u32) -> bool {
    pid == std::process::id() || Path::new("/proc").join(pid.to_string()).exists()
}

/// An exclusive lock on a data directory, released on drop.
pub struct DirLock {
    io: SharedIo,
    dir: PathBuf,
}

impl std::fmt::Debug for DirLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirLock")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl DirLock {
    /// Acquires the lock, creating the directory if needed. Fails with
    /// [`Error::Store`] when the directory is already open — in this
    /// process or (per the `LOCK` file's live pid) another one.
    pub fn acquire(io: SharedIo, dir: &Path) -> Result<DirLock> {
        io.create_dir_all(dir)
            .map_err(|e| Error::Store(format!("create data dir: {e}")))?;

        {
            let mut held = held().lock().unwrap_or_else(PoisonError::into_inner);
            if !held.insert(dir.to_path_buf()) {
                return Err(Error::Store(format!(
                    "data dir {} is already open in this process",
                    dir.display()
                )));
            }
        }
        // The registry slot is ours; give it back on every early return.
        // The guard itself is only constructed once the LOCK file is too —
        // its Drop removes that file, which must never hit a foreign lock.
        let release = || {
            held()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(dir);
        };

        let path = dir.join(LOCK_FILE);
        if io.exists(&path) {
            let owner = io
                .read(&path)
                .ok()
                .and_then(|bytes| String::from_utf8(bytes).ok())
                .and_then(|text| text.trim().parse::<u32>().ok());
            // Our own pid here means a previous instance in this process
            // died without dropping its lock (an injected crash); the
            // registry above is the live authority for that case.
            if let Some(pid) = owner {
                if pid != std::process::id() && pid_is_live(pid) {
                    release();
                    return Err(Error::Store(format!(
                        "data dir {} is locked by live process {pid}",
                        dir.display()
                    )));
                }
            }
        }
        // Written atomically (tmp + fsync + rename): a crash mid-write must
        // not tear the pid down to a *different* live pid's prefix, which
        // would wedge the directory until that unrelated process exits.
        let tmp = dir.join("LOCK.tmp");
        let written = io
            .write_file(&tmp, std::process::id().to_string().as_bytes())
            .and_then(|()| io.fsync(&tmp))
            .and_then(|()| io.rename(&tmp, &path));
        if let Err(e) = written {
            release();
            return Err(Error::Store(format!("write LOCK file: {e}")));
        }
        Ok(DirLock {
            io,
            dir: dir.to_path_buf(),
        })
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let mut held = held().lock().unwrap_or_else(PoisonError::into_inner);
        held.remove(&self.dir);
        // Best-effort: with fault injection the "disk" may be dead, and the
        // stale-pid check makes the leftover file harmless.
        let _ = self.io.remove(&self.dir.join(LOCK_FILE));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemDisk;

    #[test]
    fn double_open_in_process_is_refused_until_release() {
        let disk = MemDisk::new();
        let dir = PathBuf::from("/locked");
        let lock = DirLock::acquire(disk.io(), &dir).unwrap();
        let err = DirLock::acquire(disk.io(), &dir).unwrap_err();
        assert!(err.to_string().contains("already open"), "{err}");
        drop(lock);
        let _relock = DirLock::acquire(disk.io(), &dir).unwrap();
    }

    #[test]
    fn stale_lock_files_are_reclaimed_live_ones_refused() {
        let disk = MemDisk::new();
        let dir = PathBuf::from("/stale");
        // A pid that cannot be running (pid_max is far below u32::MAX).
        disk.io()
            .write_file(&dir.join(LOCK_FILE), b"4294967294")
            .unwrap();
        let lock = DirLock::acquire(disk.io(), &dir).unwrap();
        drop(lock);

        // Unparseable contents are treated as stale, not a crash.
        disk.io()
            .write_file(&dir.join(LOCK_FILE), b"not a pid")
            .unwrap();
        drop(DirLock::acquire(disk.io(), &dir).unwrap());

        // A live foreign pid refuses: pid 1 always runs, and is not us.
        disk.io().write_file(&dir.join(LOCK_FILE), b"1").unwrap();
        let err = DirLock::acquire(disk.io(), &dir).unwrap_err();
        assert!(err.to_string().contains("locked by live process"), "{err}");
        // The failed acquire released its registry slot: reclaimable after
        // the foreign lock file goes away.
        disk.io().remove(&dir.join(LOCK_FILE)).unwrap();
        drop(DirLock::acquire(disk.io(), &dir).unwrap());
    }

    #[test]
    fn crash_cannot_tear_the_lock_file_into_a_foreign_pid() {
        use crate::io::TornTail;
        let disk = MemDisk::new();
        let dir = PathBuf::from("/torn");
        // Acquire survives (3 mutating ops); the 4th op is the crash, whose
        // torn-tail pass truncates every file's *unsynced* suffix. The LOCK
        // was fsynced before the rename, so its pid must come through whole
        // — a prefix of it could name a live unrelated process and wedge
        // the directory until that process exits.
        let faulty: SharedIo = disk.fault_io(4, TornTail::Tear);
        let lock = DirLock::acquire(faulty.clone(), &dir).unwrap();
        assert!(faulty.write_file(&dir.join("x"), b"boom").is_err());
        let bytes = disk.io().read(&dir.join(LOCK_FILE)).unwrap();
        assert_eq!(bytes, std::process::id().to_string().as_bytes());
        drop(lock); // Its remove fails against the dead disk; harmless.
        drop(DirLock::acquire(disk.io(), &dir).unwrap());
    }

    #[test]
    fn own_pid_in_lock_file_is_reclaimable_after_crash() {
        let disk = MemDisk::new();
        let dir = PathBuf::from("/mine");
        // Simulate an injected crash: the previous engine wrote its LOCK
        // but its Drop could not remove the file (dead disk), while the
        // registry entry was released.
        disk.io()
            .write_file(
                &dir.join(LOCK_FILE),
                std::process::id().to_string().as_bytes(),
            )
            .unwrap();
        drop(DirLock::acquire(disk.io(), &dir).unwrap());
    }
}
