//! Durability layer: write-ahead log, epoch snapshots, fault injection.
//!
//! The engine survives crashes with the classic recipe, adapted to the
//! MCOS-maintenance stack:
//!
//! * every ingested batch (frames, track-end events, catalog add/remove) is
//!   appended to a **write-ahead log** ([`Wal`]) — length-prefixed,
//!   CRC-checksummed records, fsynced before the operation is acknowledged
//!   — so the effect of any acknowledged operation can be reproduced;
//! * at compaction-epoch boundaries the engine serializes its complete
//!   state (interner arena, maintainer tables, lifecycle, catalog) into an
//!   **epoch snapshot** ([`SnapshotStore`]): written to a temp file, fsynced,
//!   atomically renamed into place, then the log's covered prefix is pruned;
//! * **recovery** loads the newest valid snapshot (falling back to older
//!   ones when a checksum fails) and replays the log's tail.
//!
//! Everything talks to the filesystem through the [`StoreIo`] trait.
//! Production uses [`RealIo`]; the crash-recovery differential suite uses
//! [`FaultIo`] over an in-memory [`MemDisk`] to inject a crash at *every*
//! write/fsync point in turn — with the unsynced tail of each file dropped,
//! halved or kept — and asserts that recovery plus continuation is
//! indistinguishable from a run that never crashed. Corrupt records are
//! detected by checksum and reported, never silently replayed.
//!
//! The crate is deliberately independent of the engine: the WAL stores
//! opaque payloads, and the engine's record/snapshot codecs live next to
//! the engine (`tvq-engine`'s `persist` module).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod io;
pub mod lock;
pub mod snap;
pub mod wal;

pub use io::FaultIo;
pub use io::{MemDisk, RealIo, SharedIo, StoreIo, TornTail};
pub use lock::DirLock;
pub use snap::{LoadedSnapshot, SnapshotStore};
pub use wal::{Wal, WalOpenReport};
