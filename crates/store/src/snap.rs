//! Epoch snapshots: whole-state checkpoints written atomically.
//!
//! A snapshot file `snap-<seq>.snap` is:
//!
//! ```text
//! magic "TVQS" ++ varint(version) ++ varint(seq) ++ payload ++ crc: u32 LE
//! ```
//!
//! where `crc` is CRC-32 over every preceding byte and `seq` is the WAL
//! sequence the snapshot covers (recovery replays records with greater
//! sequence). The payload is opaque to this module — the engine's own
//! versioned codec lives in `tvq-engine`.
//!
//! Writes are crash-atomic: the bytes go to a `.tmp` file, which is
//! fsynced, renamed into place, and the directory fsynced — a crash at any
//! point leaves either the old set of snapshots or the old set plus the
//! complete new one, never a half-written `.snap`. [`load_latest`] walks
//! snapshots newest-first and falls back past corrupt ones (reporting how
//! many were skipped), so one bad checkpoint costs an epoch of replay, not
//! the store.
//!
//! [`load_latest`]: SnapshotStore::load_latest

use std::path::{Path, PathBuf};

use tvq_common::codec::{crc32, Decoder, Encoder};
use tvq_common::{Error, Result};

use crate::io::SharedIo;

const MAGIC: [u8; 4] = *b"TVQS";
const VERSION: u32 = 1;

/// How many snapshots [`SnapshotStore::save`] retains (the newest one plus
/// fallbacks for corruption).
pub const KEEP_SNAPSHOTS: usize = 2;

fn store_err(context: &str, err: std::io::Error) -> Error {
    Error::Store(format!("{context}: {err}"))
}

fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:020}.snap")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// A snapshot successfully read back from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedSnapshot {
    /// WAL sequence the snapshot covers.
    pub seq: u64,
    /// The engine's opaque payload.
    pub payload: Vec<u8>,
    /// Newer snapshots that failed validation and were skipped, as
    /// `(seq, reason)` — surfaced so corruption is reported, not hidden.
    pub skipped: Vec<(u64, String)>,
}

/// Writes and reads epoch snapshots in a directory.
pub struct SnapshotStore {
    io: SharedIo,
    dir: PathBuf,
    written: u64,
    bytes: u64,
    fsyncs: u64,
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("dir", &self.dir)
            .field("written", &self.written)
            .finish_non_exhaustive()
    }
}

impl SnapshotStore {
    /// Opens the store in `dir`, creating the directory and sweeping any
    /// `.tmp` leftovers from a crash mid-save.
    pub fn open(io: SharedIo, dir: &Path) -> Result<SnapshotStore> {
        io.create_dir_all(dir)
            .map_err(|e| store_err("create snapshot dir", e))?;
        for name in io
            .list(dir)
            .map_err(|e| store_err("list snapshot dir", e))?
        {
            if name.ends_with(".tmp") {
                io.remove(&dir.join(&name))
                    .map_err(|e| store_err("sweep stale snapshot temp", e))?;
            }
        }
        Ok(SnapshotStore {
            io,
            dir: dir.to_path_buf(),
            written: 0,
            bytes: 0,
            fsyncs: 0,
        })
    }

    /// Writes a snapshot covering WAL sequence `seq`, atomically, then
    /// drops all but the newest [`KEEP_SNAPSHOTS`] snapshots.
    pub fn save(&mut self, seq: u64, payload: &[u8]) -> Result<()> {
        let mut enc = Encoder::with_capacity(payload.len() + 32);
        enc.put_header(MAGIC, VERSION);
        enc.put_u64(seq);
        let mut bytes = enc.into_bytes();
        bytes.extend_from_slice(payload);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());

        let tmp = self.dir.join(format!("snap-{seq:020}.tmp"));
        let dest = self.dir.join(snapshot_name(seq));
        self.io
            .write_file(&tmp, &bytes)
            .map_err(|e| store_err("write snapshot temp", e))?;
        self.io
            .fsync(&tmp)
            .map_err(|e| store_err("fsync snapshot temp", e))?;
        self.io
            .rename(&tmp, &dest)
            .map_err(|e| store_err("rename snapshot into place", e))?;
        self.io
            .fsync_dir(&self.dir)
            .map_err(|e| store_err("fsync snapshot dir", e))?;
        self.written += 1;
        self.bytes += bytes.len() as u64;
        self.fsyncs += 2;

        let mut seqs = self.sequences()?;
        while seqs.len() > KEEP_SNAPSHOTS {
            let old = seqs.remove(0);
            self.io
                .remove(&self.dir.join(snapshot_name(old)))
                .map_err(|e| store_err("remove superseded snapshot", e))?;
        }
        Ok(())
    }

    /// Loads the newest snapshot that validates, skipping (and reporting)
    /// corrupt ones. Returns `Ok(None)` when the directory holds no
    /// snapshots at all; errs with [`Error::Corrupt`] when snapshots exist
    /// but none survives validation.
    pub fn load_latest(&self) -> Result<Option<LoadedSnapshot>> {
        let mut seqs = self.sequences()?;
        if seqs.is_empty() {
            return Ok(None);
        }
        seqs.reverse();
        let mut skipped = Vec::new();
        for seq in seqs {
            match self.load(seq) {
                Ok(payload) => {
                    return Ok(Some(LoadedSnapshot {
                        seq,
                        payload,
                        skipped,
                    }))
                }
                Err(Error::Store(message)) => return Err(Error::Store(message)),
                Err(err) => skipped.push((seq, err.to_string())),
            }
        }
        Err(Error::Corrupt(format!(
            "no snapshot validates; skipped {skipped:?}"
        )))
    }

    fn load(&self, seq: u64) -> Result<Vec<u8>> {
        let path = self.dir.join(snapshot_name(seq));
        let bytes = self
            .io
            .read(&path)
            .map_err(|e| store_err("read snapshot", e))?;
        if bytes.len() < 4 {
            return Err(Error::Corrupt("snapshot shorter than its checksum".into()));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != crc {
            return Err(Error::Corrupt(format!(
                "snapshot {} checksum mismatch",
                path.display()
            )));
        }
        let mut dec = Decoder::new(body);
        dec.check_header(MAGIC, VERSION)?;
        let stored_seq = dec.take_u64()?;
        if stored_seq != seq {
            return Err(Error::Corrupt(format!(
                "snapshot {} claims seq {stored_seq}",
                path.display()
            )));
        }
        Ok(body[body.len() - dec.remaining()..].to_vec())
    }

    fn sequences(&self) -> Result<Vec<u64>> {
        let mut seqs: Vec<u64> = self
            .io
            .list(&self.dir)
            .map_err(|e| store_err("list snapshot dir", e))?
            .iter()
            .filter_map(|name| parse_snapshot_name(name))
            .collect();
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Snapshots written through this handle.
    pub fn snapshots_written(&self) -> u64 {
        self.written
    }

    /// Bytes written through this handle (framing included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Fsync calls issued through this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemDisk;

    fn dir() -> PathBuf {
        PathBuf::from("/snaps")
    }

    #[test]
    fn save_load_round_trips_and_retains_two() {
        let disk = MemDisk::new();
        let mut store = SnapshotStore::open(disk.io(), &dir()).unwrap();
        assert_eq!(store.load_latest().unwrap(), None);
        store.save(3, b"epoch three").unwrap();
        store.save(9, b"epoch nine").unwrap();
        store.save(17, b"epoch seventeen").unwrap();

        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.seq, 17);
        assert_eq!(loaded.payload, b"epoch seventeen");
        assert!(loaded.skipped.is_empty());
        // The oldest snapshot was dropped; two remain.
        let names = disk.io().list(&dir()).unwrap();
        assert_eq!(names.len(), KEEP_SNAPSHOTS);
        assert!(!names.contains(&snapshot_name(3)));
        assert_eq!(store.snapshots_written(), 3);
        assert!(store.bytes_written() > 0);
        assert_eq!(store.fsyncs(), 6);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let disk = MemDisk::new();
        let mut store = SnapshotStore::open(disk.io(), &dir()).unwrap();
        store.save(5, b"good").unwrap();
        store.save(12, b"bad soon").unwrap();
        assert!(disk.flip_bit(&dir().join(snapshot_name(12)), 10));

        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.seq, 5);
        assert_eq!(loaded.payload, b"good");
        assert_eq!(loaded.skipped.len(), 1);
        assert_eq!(loaded.skipped[0].0, 12);

        // Corrupt the survivor too: existing-but-unreadable is an error,
        // never a silent "no snapshot".
        assert!(disk.flip_bit(&dir().join(snapshot_name(5)), 10));
        let err = store.load_latest().unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn seq_mismatch_and_future_versions_are_rejected() {
        let disk = MemDisk::new();
        let mut store = SnapshotStore::open(disk.io(), &dir()).unwrap();
        store.save(4, b"payload").unwrap();
        // Rename the file so its name disagrees with the embedded seq.
        disk.io()
            .rename(&dir().join(snapshot_name(4)), &dir().join(snapshot_name(6)))
            .unwrap();
        let err = store.load_latest().unwrap_err();
        assert!(err.to_string().contains("claims seq"), "{err}");

        // A snapshot from a future format version fails cleanly.
        let mut enc = Encoder::new();
        enc.put_header(MAGIC, VERSION + 1);
        enc.put_u64(8);
        let mut bytes = enc.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        disk.io()
            .write_file(&dir().join(snapshot_name(8)), &bytes)
            .unwrap();
        let err = store.load_latest().unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn open_sweeps_stale_temp_files() {
        let disk = MemDisk::new();
        disk.io()
            .write_file(&dir().join("snap-00000000000000000007.tmp"), b"half")
            .unwrap();
        let store = SnapshotStore::open(disk.io(), &dir()).unwrap();
        assert_eq!(disk.io().list(&dir()).unwrap(), Vec::<String>::new());
        assert_eq!(store.load_latest().unwrap(), None);
    }
}
