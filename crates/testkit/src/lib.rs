//! Shared test harness for the differential suites.
//!
//! The differential tests pin the production MCOS maintainers (NAIVE, MFS,
//! SSG) to the brute-force reference oracle: after every frame of a feed,
//! every maintainer must report exactly the same satisfied MCOS with exactly
//! the same frame sets. This crate centralises the two ingredients those
//! tests share so that `tvq-core`, `tvq-query` and the top-level end-to-end
//! tests all exercise identical semantics:
//!
//! * **feed generators** — [`tracked_feed`] produces object-set sequences
//!   mimicking a tracked video feed (arrivals, persistence, occlusion,
//!   departures); [`classed_feed`] produces full `(id, class)` detections for
//!   engine-level tests;
//! * **oracle-equivalence assertions** — [`assert_all_equivalent`] (every
//!   production maintainer vs. the reference), [`assert_equivalent_with_pruner`]
//!   (the pruning `_O` variants vs. the reference filtered by the same
//!   pruner), and [`assert_multifeed_equals_single`] (the sharded multi-feed
//!   engine vs. N independent single-feed engines, frame-for-frame); the
//!   [`multi_feed_classed`] generator produces the decorrelated per-feed
//!   inputs those multi-feed tests run on.
//!
//! Results are compared as canonically sorted sets of
//! `(object set, frame set)` pairs, so failures are deterministic and the
//! mismatch report names the offending entries instead of dumping two whole
//! result sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tvq_common::{ClassId, FeedId, FrameId, FrameObjects, ObjectId, ObjectSet, WindowSpec};
use tvq_core::{MaintainerKind, SharedPruner, StateMaintainer};
use tvq_engine::{
    EngineConfig, FeedFrame, MultiFeedConfig, MultiFeedEngine, TemporalVideoQueryEngine,
};
use tvq_video::{feed_seed, interleave, CameraFeed};

pub use tvq_video::{skewed_grid, SkewProfile};

/// A maintainer's results in canonical form: `(object set, frame set)` pairs
/// sorted by object set. [`tvq_core::ResultStateSet`] already iterates in
/// object-set order; sorting here keeps the comparison canonical even if a
/// future maintainer returns an unordered snapshot.
pub fn canonical_results(maintainer: &dyn StateMaintainer) -> Vec<(ObjectSet, Vec<FrameId>)> {
    let mut results: Vec<(ObjectSet, Vec<FrameId>)> = maintainer
        .results()
        .iter()
        .map(|(set, frames)| (set.clone(), frames.to_vec()))
        .collect();
    results.sort();
    results
}

/// Renders the difference between two canonical result sets: entries only the
/// reference has, entries only the subject has, and shared object sets whose
/// frame sets disagree.
fn describe_mismatch(
    expected: &[(ObjectSet, Vec<FrameId>)],
    got: &[(ObjectSet, Vec<FrameId>)],
) -> String {
    let mut out = String::new();
    for (set, frames) in expected {
        match got.iter().find(|(s, _)| s == set) {
            None => out.push_str(&format!("  missing {set:?} (frames {frames:?})\n")),
            Some((_, other)) if other != frames => out.push_str(&format!(
                "  frame sets differ for {set:?}: expected {frames:?}, got {other:?}\n"
            )),
            Some(_) => {}
        }
    }
    for (set, frames) in got {
        if !expected.iter().any(|(s, _)| s == set) {
            out.push_str(&format!("  unexpected {set:?} (frames {frames:?})\n"));
        }
    }
    out
}

/// Asserts that `subject`'s results equal `expected`, with a readable diff on
/// failure. The context is a closure so the (quadratic) frame-history dump is
/// only rendered when the comparison actually fails.
fn assert_results_match(
    expected: &[(ObjectSet, Vec<FrameId>)],
    subject: &dyn StateMaintainer,
    context: impl FnOnce() -> String,
) {
    let got = canonical_results(subject);
    if got != expected {
        panic!(
            "{} disagrees with the reference oracle {}\nexpected: {expected:?}\ngot: {got:?}\n{}",
            subject.name(),
            context(),
            describe_mismatch(expected, &got),
        );
    }
}

/// Runs every production maintainer plus the reference oracle over the same
/// frame sequence and asserts that the reported result object sets and their
/// frame sets are identical after every frame.
pub fn assert_all_equivalent(frames: &[ObjectSet], spec: WindowSpec) {
    let mut reference = MaintainerKind::Reference.build(spec);
    let mut others: Vec<Box<dyn StateMaintainer>> = MaintainerKind::PRODUCTION
        .iter()
        .map(|kind| kind.build(spec))
        .collect();

    for (i, objects) in frames.iter().enumerate() {
        let fid = FrameId(i as u64);
        reference.advance(fid, objects).unwrap();
        let expected = canonical_results(reference.as_ref());
        for maintainer in &mut others {
            maintainer.advance(fid, objects).unwrap();
            assert_results_match(&expected, maintainer.as_ref(), || {
                format!(
                    "at frame {i} (w={}, d={})\nframes so far: {:?}",
                    spec.window(),
                    spec.duration(),
                    &frames[..=i]
                )
            });
        }
    }
}

/// Runs the pruning-capable maintainers (MFS, SSG — the paper's `_O`
/// variants) with `pruner` attached and asserts, after every frame, that
/// their results equal the unpruned reference oracle's results *minus* the
/// states the pruner terminates.
///
/// This is exactly the guarantee a sound (downward-monotone) pruner gives:
/// termination may only suppress states that could never satisfy a query, so
/// every surviving reference state must still be reported, and nothing else.
pub fn assert_equivalent_with_pruner(frames: &[ObjectSet], spec: WindowSpec, pruner: SharedPruner) {
    let mut reference = MaintainerKind::Reference.build(spec);
    let mut pruned: Vec<Box<dyn StateMaintainer>> = [MaintainerKind::Mfs, MaintainerKind::Ssg]
        .iter()
        .map(|kind| kind.build_with_pruner(spec, pruner.clone()))
        .collect();

    for (i, objects) in frames.iter().enumerate() {
        let fid = FrameId(i as u64);
        reference.advance(fid, objects).unwrap();
        let expected: Vec<(ObjectSet, Vec<FrameId>)> = canonical_results(reference.as_ref())
            .into_iter()
            .filter(|(set, _)| !pruner.should_terminate(set))
            .collect();
        for maintainer in &mut pruned {
            maintainer.advance(fid, objects).unwrap();
            assert_results_match(&expected, maintainer.as_ref(), || {
                format!(
                    "under pruning at frame {i} (w={}, d={})\nframes so far: {:?}",
                    spec.window(),
                    spec.duration(),
                    &frames[..=i]
                )
            });
        }
    }
}

/// Generates a frame sequence mimicking a tracked video feed: objects enter,
/// persist for a while, occasionally get occluded, and leave.
pub fn tracked_feed(seed: u64, num_frames: usize, universe: u32, occlusion: f64) -> Vec<ObjectSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<(u32, usize)> = Vec::new(); // (object, remaining lifetime)
    let mut next_id = 0u32;
    let mut frames = Vec::with_capacity(num_frames);
    for _ in 0..num_frames {
        // Arrivals.
        while active.len() < universe as usize && rng.gen_bool(0.35) {
            let lifetime = rng.gen_range(2..=8);
            active.push((next_id % universe, lifetime));
            next_id += 1;
        }
        // Visible objects: active ones that are not occluded this frame.
        let visible: Vec<u32> = active
            .iter()
            .filter(|_| !rng.gen_bool(occlusion))
            .map(|&(id, _)| id)
            .collect();
        frames.push(ObjectSet::from_raw(visible));
        // Departures.
        for entry in &mut active {
            entry.1 -= 1;
        }
        active.retain(|&(_, life)| life > 0);
    }
    frames
}

/// Generates per-frame `(id, class)` detections for engine-level tests: the
/// same arrival/occlusion/departure dynamics as [`tracked_feed`], with each
/// object's class fixed to `id % num_classes` so class assignments are stable
/// across occlusions.
pub fn classed_feed(
    seed: u64,
    num_frames: usize,
    universe: u32,
    occlusion: f64,
    num_classes: u16,
) -> Vec<FrameObjects> {
    assert!(num_classes > 0, "at least one class is required");
    tracked_feed(seed, num_frames, universe, occlusion)
        .into_iter()
        .enumerate()
        .map(|(i, objects)| {
            FrameObjects::new(
                FrameId(i as u64),
                objects
                    .iter()
                    .map(|id| (id, ClassId(id.raw() as u16 % num_classes)))
                    .collect::<Vec<(ObjectId, ClassId)>>(),
            )
        })
        .collect()
}

/// Generates `num_feeds` classed feeds with per-feed seeds derived from
/// `seed` (same dynamics as [`classed_feed`], decorrelated across feeds).
pub fn multi_feed_classed(
    seed: u64,
    num_feeds: u32,
    num_frames: usize,
    universe: u32,
    occlusion: f64,
    num_classes: u16,
) -> Vec<CameraFeed> {
    (0..num_feeds)
        .map(|raw| {
            let feed = FeedId(raw);
            CameraFeed {
                feed,
                frames: classed_feed(
                    feed_seed(seed, feed),
                    num_frames,
                    universe,
                    occlusion,
                    num_classes,
                ),
            }
        })
        .collect()
}

/// Runs a sharded [`MultiFeedEngine`] and one independent single-feed
/// engine per feed over the same feeds, and asserts they agree
/// frame-for-frame and metric-for-metric.
///
/// The multi-feed engine ingests the feeds as round-robin batches of
/// `batch_size` tagged frames (the production ingestion shape); every
/// [`FeedFrameResult`](tvq_engine::FeedFrameResult) must equal the result
/// the feed's dedicated single-feed engine produces for the same frame, and
/// the final [`report`](MultiFeedEngine::report) must reproduce each
/// single engine's strategy, metrics and live-state count exactly, in
/// ascending feed-id order.
pub fn assert_multifeed_equals_single(
    feeds: &[CameraFeed],
    config: EngineConfig,
    queries: &[&str],
    workers: usize,
    batch_size: usize,
) {
    assert_multifeed_config_equals_single(
        feeds,
        MultiFeedConfig::new(config).with_workers(workers),
        queries,
        batch_size,
        false,
    );
}

/// [`assert_multifeed_equals_single`] with full control over the
/// [`MultiFeedConfig`] (rebalance cadence, steal threshold, class-store
/// sharing) plus an option to *force* a migration of every feed to a
/// rotating worker after every batch — the adversarial schedule for the
/// determinism-under-migration differential suite.
pub fn assert_multifeed_config_equals_single(
    feeds: &[CameraFeed],
    multi_config: MultiFeedConfig,
    queries: &[&str],
    batch_size: usize,
    force_migrations: bool,
) {
    let config = multi_config.engine;
    let build_single = || {
        let mut builder = TemporalVideoQueryEngine::builder(config);
        for query in queries {
            builder = builder.with_query_text(query).expect("query parses");
        }
        builder.build().expect("single-feed engine builds")
    };
    let mut singles: BTreeMap<FeedId, TemporalVideoQueryEngine> = feeds
        .iter()
        .map(|feed| (feed.feed, build_single()))
        .collect();

    let mut builder = MultiFeedEngine::builder(multi_config);
    for query in queries {
        builder = builder.with_query_text(query).expect("query parses");
    }
    let mut multi = builder.build().expect("multi-feed engine builds");
    let workers = multi.num_workers();

    for (round, batch) in interleave(feeds, batch_size).into_iter().enumerate() {
        let tagged: Vec<FeedFrame> = batch.into_iter().map(FeedFrame::from).collect();
        let results = multi.push_batch(&tagged).expect("batch is accepted");
        assert_eq!(results.len(), tagged.len());
        for (sent, got) in tagged.iter().zip(&results) {
            assert_eq!(got.feed, sent.feed, "result tagged with the wrong feed");
            let expected = singles
                .get_mut(&sent.feed)
                .expect("feed was registered")
                .observe(&sent.frame)
                .expect("single-feed engine accepts the frame");
            assert_eq!(
                got.result, expected,
                "sharded run diverged from the single-feed oracle at feed {} frame {} (workers={workers}, batch={batch_size})",
                sent.feed, sent.frame.fid
            );
        }
        if force_migrations {
            // Bounce every feed onto a rotating worker between batches:
            // migration must be invisible to results no matter how often
            // or where feeds move.
            for (offset, feed) in feeds.iter().enumerate() {
                let target = (round + offset) % workers;
                multi
                    .migrate_feed(feed.feed, target)
                    .expect("migration succeeds");
            }
        }
    }

    let report = multi.report().expect("report is collected");
    assert_eq!(report.num_feeds(), feeds.len(), "report misses feeds");
    assert!(
        report.feeds.windows(2).all(|w| w[0].feed < w[1].feed),
        "report is not feed-id ordered"
    );
    for feed_report in &report.feeds {
        let single = &singles[&feed_report.feed];
        assert_eq!(
            feed_report.strategy,
            single.strategy(),
            "strategy mismatch for {}",
            feed_report.feed
        );
        assert_eq!(
            feed_report.metrics,
            single.metrics(),
            "metrics mismatch for {}",
            feed_report.feed
        );
        assert_eq!(
            feed_report.live_states,
            single.live_states(),
            "live-state mismatch for {}",
            feed_report.feed
        );
    }
    let mut merged = tvq_core::MaintenanceMetrics::merged(report.feeds.iter().map(|f| &f.metrics));
    // The scheduler-owned counters are injected fleet-wide by the report
    // (per-feed engines always carry them as zero).
    merged.per_shard_queue_depth = report.metrics.per_shard_queue_depth;
    merged.feeds_migrated = report.metrics.feeds_migrated;
    merged.rebalances = report.metrics.rebalances;
    assert_eq!(report.metrics, merged, "global metrics are not the merge");
    if force_migrations {
        assert!(
            report.metrics.feeds_migrated > 0,
            "forced migrations were not recorded"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_core::MinCardinalityPruner;

    #[test]
    fn tracked_feed_is_deterministic_and_bounded() {
        let a = tracked_feed(3, 25, 5, 0.2);
        let b = tracked_feed(3, 25, 5, 0.2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        assert!(a.iter().all(|f| f.iter().all(|o| o.raw() < 5)));
        assert_ne!(a, tracked_feed(4, 25, 5, 0.2));
    }

    #[test]
    fn classed_feed_assigns_stable_classes() {
        let frames = classed_feed(9, 20, 6, 0.3, 2);
        assert_eq!(frames.len(), 20);
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(frame.fid, FrameId(i as u64));
            for &(id, class) in &frame.classes {
                assert_eq!(class, ClassId(id.raw() as u16 % 2));
            }
        }
    }

    #[test]
    fn canonical_results_are_sorted() {
        let spec = WindowSpec::new(3, 1).unwrap();
        let mut maintainer = MaintainerKind::Naive.build(spec);
        for (i, objects) in [
            ObjectSet::from_raw([3, 4]),
            ObjectSet::from_raw([1, 2]),
            ObjectSet::from_raw([2, 3]),
        ]
        .iter()
        .enumerate()
        {
            maintainer.advance(FrameId(i as u64), objects).unwrap();
        }
        let results = canonical_results(maintainer.as_ref());
        assert!(!results.is_empty());
        assert!(results.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn mismatch_description_names_the_differing_entries() {
        let expected = vec![
            (ObjectSet::from_raw([1]), vec![FrameId(0)]),
            (ObjectSet::from_raw([2]), vec![FrameId(1)]),
        ];
        let got = vec![
            (ObjectSet::from_raw([1]), vec![FrameId(0), FrameId(2)]),
            (ObjectSet::from_raw([3]), vec![FrameId(1)]),
        ];
        let report = describe_mismatch(&expected, &got);
        assert!(report.contains("frame sets differ"));
        assert!(report.contains("missing"));
        assert!(report.contains("unexpected"));
    }

    #[test]
    fn equivalence_assertions_accept_agreeing_runs() {
        let frames = tracked_feed(1, 20, 5, 0.25);
        let spec = WindowSpec::new(4, 2).unwrap();
        assert_all_equivalent(&frames, spec);
        let pruner: SharedPruner = std::sync::Arc::new(MinCardinalityPruner { min_objects: 2 });
        assert_equivalent_with_pruner(&frames, spec, pruner);
    }

    #[test]
    fn multi_feed_classed_is_deterministic_and_decorrelated() {
        let feeds = multi_feed_classed(7, 3, 15, 6, 0.2, 2);
        assert_eq!(feeds.len(), 3);
        assert_eq!(feeds, multi_feed_classed(7, 3, 15, 6, 0.2, 2));
        assert_ne!(feeds[0].frames, feeds[1].frames);
        for (index, feed) in feeds.iter().enumerate() {
            assert_eq!(feed.feed, FeedId(index as u32));
            assert_eq!(feed.frames.len(), 15);
        }
    }

    #[test]
    fn multifeed_assertion_accepts_an_agreeing_deployment() {
        let feeds = multi_feed_classed(3, 3, 18, 6, 0.25, 2);
        let config = EngineConfig::new(WindowSpec::new(5, 3).unwrap());
        assert_multifeed_equals_single(&feeds, config, &["car >= 1 AND person >= 1"], 2, 5);
    }
}
