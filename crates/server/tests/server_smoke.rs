//! End-to-end smoke of the TCP server on an ephemeral port: query
//! registration and cancellation, a match round-tripping through a
//! subscription, and backpressure drops on an overflowing subscriber.

use tvq_common::WindowSpec;
use tvq_engine::EngineConfig;
use tvq_server::{QueryServer, ServerClient};

fn field(response: &str, key: &str) -> u64 {
    response
        .split_whitespace()
        .find_map(|token| token.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
        .unwrap_or_else(|| panic!("no {key}= in {response:?}"))
}

fn start() -> tvq_server::ServerHandle {
    let config = EngineConfig::new(WindowSpec::new(4, 3).unwrap());
    QueryServer::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap()
}

#[test]
fn register_match_cancel_round_trip() {
    let handle = start();
    let mut client = ServerClient::connect(handle.addr()).unwrap();

    let added = client.expect_ok("ADD car >= 1 AND person >= 1").unwrap();
    let qid = field(&added, "id");
    assert_eq!(field(&added, "version"), 1);
    let sub = field(&client.expect_ok("SUBSCRIBE cap=16").unwrap(), "sub");

    // Three co-occurring frames fill the duration threshold (window 4/3).
    for fid in 0..3 {
        client
            .expect_ok(&format!("FRAME {fid} 10:car 20:person"))
            .unwrap();
    }
    let poll = client.expect_ok(&format!("POLL {sub} 100")).unwrap();
    assert_eq!(field(&poll, "events"), 1, "{poll}");
    let event = poll.lines().nth(1).expect("one EVENT line");
    assert!(event.contains(&format!("query={qid}")), "{event}");
    assert!(event.contains("objects=10,20"), "{event}");

    // Cancel: the next full window must not match, and polling is quiet.
    client.expect_ok(&format!("REMOVE {qid}")).unwrap();
    for fid in 3..8 {
        let pushed = client
            .expect_ok(&format!("FRAME {fid} 10:car 20:person"))
            .unwrap();
        assert_eq!(field(&pushed, "matches"), 0, "{pushed}");
    }
    let drained = client.expect_ok(&format!("POLL {sub} 100")).unwrap();
    assert_eq!(field(&drained, "events"), 0, "{drained}");

    // Unknown ids and malformed commands report ERR, connection survives.
    assert!(client.request("REMOVE 99").unwrap().starts_with("ERR"));
    assert!(client.request("GIBBERISH").unwrap().starts_with("ERR"));
    assert!(client.expect_ok("PING").is_ok());

    client.quit().unwrap();
    handle.stop().unwrap();
}

#[test]
fn overflowing_subscriber_counts_drops_and_keeps_newest() {
    let handle = start();
    let mut client = ServerClient::connect(handle.addr()).unwrap();
    client.expect_ok("ADD car >= 1").unwrap();
    let tiny = field(&client.expect_ok("SUBSCRIBE cap=2").unwrap(), "sub");

    // Frames 2..=9 each publish one match: 8 events into a 2-slot queue.
    for fid in 0..10 {
        client.expect_ok(&format!("FRAME {fid} 1:car")).unwrap();
    }
    let poll = client.expect_ok(&format!("POLL {tiny} 100")).unwrap();
    assert_eq!(field(&poll, "events"), 2, "{poll}");
    assert_eq!(field(&poll, "dropped"), 6, "{poll}");
    // Drop-oldest: the two survivors are the two newest frames' matches.
    let frames: Vec<u64> = poll
        .lines()
        .skip(1)
        .map(|line| field(line, "frame"))
        .collect();
    assert_eq!(frames, vec![8, 9], "{poll}");

    client.quit().unwrap();
    handle.stop().unwrap();
}

#[test]
fn two_clients_share_one_engine() {
    let handle = start();
    let mut writer = ServerClient::connect(handle.addr()).unwrap();
    let mut reader = ServerClient::connect(handle.addr()).unwrap();

    writer.expect_ok("ADD person >= 2").unwrap();
    let sub = field(&reader.expect_ok("SUBSCRIBE").unwrap(), "sub");
    for fid in 0..3 {
        writer
            .expect_ok(&format!("FRAME {fid} 1:person 2:person"))
            .unwrap();
    }
    let poll = reader.expect_ok(&format!("POLL {sub}")).unwrap();
    assert_eq!(field(&poll, "events"), 1, "{poll}");
    let stats = reader.expect_ok("STATS").unwrap();
    assert_eq!(field(&stats, "frames"), 3, "{stats}");
    assert_eq!(field(&stats, "version"), 1, "{stats}");

    writer.quit().unwrap();
    reader.quit().unwrap();
    handle.stop().unwrap();
}
