//! Property tests for the wire protocol, plus malformed-input behaviour of
//! a live server: the framing layer must round-trip anything it wrote,
//! reject hostile length prefixes before allocating, and treat a
//! non-UTF-8 command as an `ERR` reply — never as a reason to kill the
//! connection or the process.

use std::io::{Cursor, Write};
use std::net::TcpStream;

use proptest::prelude::*;
use tvq_common::WindowSpec;
use tvq_engine::EngineConfig;
use tvq_server::protocol::{read_frame, read_frame_bytes, write_frame, MAX_FRAME_LEN};
use tvq_server::{QueryServer, ServerClient, ServerHandle};

/// Strategy: a batch of payload strings (built from generated code points —
/// the vendored proptest has no string strategy) including empties.
fn payloads() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..0x11_0000, 0..40), 1..8)
}

fn to_string(codes: &[u32]) -> String {
    codes
        .iter()
        .map(|&c| char::from_u32(c).unwrap_or('\u{FFFD}'))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of frames (empty payloads included) round-trips and
    /// ends with a clean EOF.
    #[test]
    fn frames_round_trip(batch in payloads()) {
        let texts: Vec<String> = batch.iter().map(|codes| to_string(codes)).collect();
        let mut buffer = Vec::new();
        for text in &texts {
            write_frame(&mut buffer, text).unwrap();
        }
        let mut cursor = Cursor::new(buffer);
        for text in &texts {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap().unwrap(), text);
        }
        prop_assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    /// A length prefix above MAX_FRAME_LEN is rejected after reading
    /// exactly the 4 header bytes — before any payload allocation or read
    /// (the cursor proves no payload byte was consumed).
    #[test]
    fn oversized_length_is_rejected_without_touching_the_payload(
        excess in 1u32..=u32::MAX - (MAX_FRAME_LEN as u32),
        junk in proptest::collection::vec(0u8..=255, 0..16),
    ) {
        let announced = MAX_FRAME_LEN as u32 + excess;
        let mut wire = announced.to_be_bytes().to_vec();
        wire.extend_from_slice(&junk);
        let mut cursor = Cursor::new(wire);
        let err = read_frame_bytes(&mut cursor).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        prop_assert_eq!(cursor.position(), 4, "stopped at the header");
    }

    /// A frame truncated anywhere — mid-header or mid-payload — is an
    /// error, never a silent EOF or a hang.
    #[test]
    fn truncated_frames_are_errors(
        codes in proptest::collection::vec(0u32..0x11_0000, 1..40),
        cut in 0usize..100,
    ) {
        let text = to_string(&codes);
        let mut wire = Vec::new();
        write_frame(&mut wire, &text).unwrap();
        let cut = 1 + cut % (wire.len() - 1); // 1..wire.len(): strictly partial
        wire.truncate(cut);
        let mut cursor = Cursor::new(wire);
        prop_assert!(read_frame_bytes(&mut cursor).is_err());
    }

    /// Invalid UTF-8 is a *payload*-level error: the byte layer must
    /// deliver the frame intact, the text layer must reject it.
    #[test]
    fn invalid_utf8_fails_text_reads_but_not_byte_reads(
        prefix in proptest::collection::vec(0u8..=255, 0..32),
    ) {
        let mut payload = prefix;
        payload.push(0xFF); // 0xFF never occurs in valid UTF-8
        let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&payload);
        let mut bytes = Cursor::new(wire.clone());
        prop_assert_eq!(read_frame_bytes(&mut bytes).unwrap().unwrap(), payload);
        let mut text = Cursor::new(wire);
        let err = read_frame(&mut text).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}

fn spawn_server() -> ServerHandle {
    let config = EngineConfig::new(WindowSpec::new(3, 2).unwrap());
    QueryServer::bind("127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap()
}

#[test]
fn non_utf8_command_gets_an_err_reply_and_the_connection_survives() {
    let handle = spawn_server();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // A raw frame whose payload is not UTF-8: length prefix + garbage.
    let payload = [0xFFu8, 0xC0, 0x80, b'P', b'I', b'N', b'G'];
    stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(&payload).unwrap();
    stream.flush().unwrap();
    let mut reader = stream.try_clone().unwrap();
    let reply = read_frame(&mut reader).unwrap().unwrap();
    assert!(reply.starts_with("ERR"), "expected ERR, got {reply:?}");
    assert!(reply.contains("UTF-8"), "{reply:?}");
    // The connection is still serving: a well-formed command works.
    write_frame(&mut stream, "PING").unwrap();
    assert_eq!(read_frame(&mut reader).unwrap().unwrap(), "OK pong");
    handle.stop().unwrap();
}

#[test]
fn poll_after_unsubscribe_is_an_error_reply_not_a_panic() {
    let handle = spawn_server();
    let mut client = ServerClient::connect(handle.addr()).unwrap();
    let reply = client.request("SUBSCRIBE cap=4").unwrap();
    assert_eq!(reply, "OK sub=0");
    assert_eq!(
        client.request("UNSUBSCRIBE 0").unwrap(),
        "OK unsubscribed=0"
    );
    let reply = client.request("POLL 0").unwrap();
    assert!(reply.starts_with("ERR"), "expected ERR, got {reply:?}");
    // The connection (and the server) are unharmed.
    assert_eq!(client.request("PING").unwrap(), "OK pong");
    // Re-subscribing mints a fresh id rather than resurrecting the dead one.
    assert_eq!(client.request("SUBSCRIBE cap=4").unwrap(), "OK sub=1");
    client.quit().unwrap();
    handle.stop().unwrap();
}
