//! The TCP query server: a [`TemporalVideoQueryEngine`] plus a
//! [`SubscriptionHub`] behind a mutex, served thread-per-connection.
//!
//! # Command language
//!
//! Each request frame carries one command; each response frame starts with
//! `OK` or `ERR`:
//!
//! | command | effect |
//! |---|---|
//! | `ADD <cnf text>` | register a query, minting the next free id |
//! | `REMOVE <qid>` | cancel a query (its verdicts vanish immediately) |
//! | `SUBSCRIBE [cap=<n>] [<qid>...]` | register a match subscriber; no ids = all queries |
//! | `UNSUBSCRIBE <sub>` | drop a subscriber and its queue |
//! | `FRAME <fid> [<id>:<label>...] [END <id>,...]` | ingest one frame; `END` ids are track ends |
//! | `POLL <sub> [max]` | drain up to `max` queued match events |
//! | `STATS` | catalog version, counters, strategy |
//! | `SHUTDOWN` | flush + fsync durable state, then stop the server |
//! | `PING` / `QUIT` | liveness / close |
//!
//! The engine serves one frame stream (one camera per server process; the
//! in-process [`MultiFeedEngine`](tvq_engine::MultiFeedEngine) is the
//! embedded many-camera path), so `FRAME` takes a frame id, not a feed id.
//! Detections use class *labels*; labels no registered query mentions are
//! counted as `ignored` rather than rejected, mirroring the engine's own
//! relevant-class filter.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use tvq_common::{Error, FeedId, FrameId, FrameObjects, ObjectId, Result};
use tvq_engine::{EngineConfig, SubscriberId, SubscriptionHub, TemporalVideoQueryEngine};
use tvq_store::{RealIo, SharedIo};

use crate::protocol::{read_frame_bytes, write_frame};

/// Everything a connection needs to serve a command. One mutex guards the
/// whole state: commands are short (the per-frame engine work dominates)
/// and a single lock keeps `FRAME` ingest and `publish` atomic, so
/// subscribers never observe a frame's matches torn across polls.
struct ServerState {
    engine: TemporalVideoQueryEngine,
    hub: SubscriptionHub,
    frames: u64,
    matches: u64,
}

impl ServerState {
    fn new(engine: TemporalVideoQueryEngine) -> Self {
        ServerState {
            engine,
            hub: SubscriptionHub::new(),
            frames: 0,
            matches: 0,
        }
    }

    /// Executes one command line, returning the response payload. Keeping
    /// this free of socket types makes the whole command surface testable
    /// in-process.
    fn execute(&mut self, line: &str) -> String {
        match self.try_execute(line) {
            Ok(response) => response,
            Err(err) => format!("ERR {err}"),
        }
    }

    fn try_execute(&mut self, line: &str) -> Result<String> {
        let trimmed = line.trim();
        let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((verb, rest)) => (verb, rest.trim()),
            None => (trimmed, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "ADD" => self.add(rest),
            "REMOVE" => self.remove(rest),
            "SUBSCRIBE" => self.subscribe(rest),
            "UNSUBSCRIBE" => self.unsubscribe(rest),
            "FRAME" => self.frame(rest),
            "POLL" => self.poll(rest),
            "STATS" => Ok(self.stats()),
            "PING" => Ok("OK pong".to_string()),
            "QUIT" => Ok("OK bye".to_string()),
            "" => Err(Error::InvalidConfig("empty command".to_string())),
            other => Err(Error::InvalidConfig(format!("unknown command {other:?}"))),
        }
    }

    fn add(&mut self, text: &str) -> Result<String> {
        if text.is_empty() {
            return Err(Error::InvalidConfig("ADD needs a query".to_string()));
        }
        let id = self.engine.add_query_text(text)?;
        Ok(format!(
            "OK id={} version={}",
            id.0,
            self.engine.catalog_version()
        ))
    }

    fn remove(&mut self, rest: &str) -> Result<String> {
        let id = parse_u32(rest, "REMOVE needs a query id")?;
        self.engine.remove_query(tvq_common::QueryId(id))?;
        self.hub.retract_query(tvq_common::QueryId(id));
        Ok(format!(
            "OK removed={} version={}",
            id,
            self.engine.catalog_version()
        ))
    }

    fn subscribe(&mut self, rest: &str) -> Result<String> {
        let mut capacity = 64usize;
        let mut filter = tvq_common::FxHashSet::default();
        for token in rest.split_whitespace() {
            if let Some(cap) = token.strip_prefix("cap=") {
                capacity = cap
                    .parse()
                    .map_err(|_| Error::InvalidConfig(format!("bad capacity {cap:?}")))?;
            } else {
                filter.insert(tvq_common::QueryId(parse_u32(token, "bad query id")?));
            }
        }
        let filter = if filter.is_empty() {
            None
        } else {
            Some(filter)
        };
        let sub = self.hub.subscribe(capacity, filter);
        Ok(format!("OK sub={}", sub.0))
    }

    fn unsubscribe(&mut self, rest: &str) -> Result<String> {
        let id = parse_u64(rest, "UNSUBSCRIBE needs a subscriber id")?;
        self.hub.unsubscribe(SubscriberId(id))?;
        Ok(format!("OK unsubscribed={id}"))
    }

    fn frame(&mut self, rest: &str) -> Result<String> {
        let mut tokens = rest.split_whitespace();
        let fid = parse_u64(tokens.next().unwrap_or(""), "FRAME needs a frame id")?;
        let mut detections = Vec::new();
        let mut ends = Vec::new();
        let mut ignored = 0usize;
        let mut in_ends = false;
        for token in tokens {
            if token.eq_ignore_ascii_case("END") {
                in_ends = true;
                continue;
            }
            if in_ends {
                for id in token.split(',').filter(|s| !s.is_empty()) {
                    ends.push(ObjectId(parse_u32(id, "bad END object id")?));
                }
            } else {
                let (id, label) = token.split_once(':').ok_or_else(|| {
                    Error::InvalidConfig(format!("bad detection {token:?} (want <id>:<label>)"))
                })?;
                let object = ObjectId(parse_u32(id, "bad object id")?);
                match self.engine.registry().id(label) {
                    Some(class) => detections.push((object, class)),
                    // A label no query has ever mentioned cannot influence
                    // any match; count it instead of failing ingest.
                    None => ignored += 1,
                }
            }
        }
        let frame = FrameObjects::new(FrameId(fid), detections).with_track_ends(ends);
        let result = self.engine.observe(&frame)?;
        self.frames += 1;
        self.matches += result.matches.len() as u64;
        let events = self.hub.publish(FeedId(0), result.frame, &result.matches);
        Ok(format!(
            "OK frame={} matches={} events={} ignored={}",
            fid,
            result.matches.len(),
            events,
            ignored
        ))
    }

    fn poll(&mut self, rest: &str) -> Result<String> {
        let mut tokens = rest.split_whitespace();
        let sub = SubscriberId(parse_u64(
            tokens.next().unwrap_or(""),
            "POLL needs a subscriber id",
        )?);
        let max = match tokens.next() {
            Some(raw) => parse_u64(raw, "bad POLL max")? as usize,
            None => usize::MAX,
        };
        let events = self.hub.poll(sub, max)?;
        let (dropped, remaining) = self
            .hub
            .subscription(sub)
            .map(|s| (s.dropped(), s.queued()))
            .unwrap_or((0, 0));
        let mut response = format!(
            "OK events={} dropped={} remaining={}",
            events.len(),
            dropped,
            remaining
        );
        for event in events {
            let objects: Vec<String> = event
                .matched
                .objects
                .iter()
                .map(|o| o.0.to_string())
                .collect();
            response.push_str(&format!(
                "\nEVENT seq={} frame={} query={} objects={}",
                event.seq,
                event.frame.0,
                event.matched.query.0,
                objects.join(",")
            ));
        }
        Ok(response)
    }

    fn stats(&self) -> String {
        let metrics = self.engine.metrics();
        format!(
            "OK version={} queries={} strategy={} frames={} matches={} subscribers={} published={} dropped={} tracks_ended={} recoveries={}",
            self.engine.catalog_version(),
            self.engine.queries().len(),
            self.engine.strategy(),
            self.frames,
            self.matches,
            self.hub.len(),
            self.hub.published(),
            self.hub.total_dropped(),
            metrics.tracks_ended,
            metrics.recoveries,
        )
    }
}

fn parse_u32(raw: &str, what: &str) -> Result<u32> {
    raw.trim()
        .parse()
        .map_err(|_| Error::InvalidConfig(format!("{what}: {raw:?}")))
}

fn parse_u64(raw: &str, what: &str) -> Result<u64> {
    raw.trim()
        .parse()
        .map_err(|_| Error::InvalidConfig(format!("{what}: {raw:?}")))
}

/// State every connection thread shares: the engine behind its mutex, the
/// stop flag, and the bound address (used to poke the accept loop awake
/// after an in-band `SHUTDOWN`).
struct Shared {
    state: Mutex<ServerState>,
    stopping: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Flushes the engine's durable state (due snapshot + WAL fsync). A
    /// no-op for a server without a data directory.
    fn sync(&self) -> Result<()> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .engine
            .sync_store()
    }
}

/// A bound, not-yet-serving query server. [`spawn`](Self::spawn) starts the
/// accept loop on a background thread and returns a [`ServerHandle`] for
/// orderly shutdown — the shape both the binary and the smoke tests use.
pub struct QueryServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl QueryServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) around an engine
    /// built from `config` with an initially empty query catalog — clients
    /// register queries with `ADD`.
    pub fn bind(addr: impl ToSocketAddrs, config: EngineConfig) -> Result<Self> {
        let engine = TemporalVideoQueryEngine::builder(config)
            .allow_empty_catalog()
            .build()?;
        Self::bind_engine(addr, engine)
    }

    /// Binds a *durable* server over `dir` on the real filesystem: a fresh
    /// directory starts an empty engine with durability attached, a
    /// directory holding engine data is recovered (snapshot + WAL replay),
    /// resuming the catalog and windows the previous process acknowledged.
    pub fn bind_durable(
        addr: impl ToSocketAddrs,
        config: EngineConfig,
        dir: &Path,
    ) -> Result<Self> {
        Self::bind_with_store(addr, config, RealIo::shared(), dir)
    }

    /// [`bind_durable`](Self::bind_durable) over an injectable
    /// [`StoreIo`](tvq_store::StoreIo) — the testable seam (the restart
    /// tests run against a [`MemDisk`](tvq_store::MemDisk)).
    pub fn bind_with_store(
        addr: impl ToSocketAddrs,
        config: EngineConfig,
        io: SharedIo,
        dir: &Path,
    ) -> Result<Self> {
        let engine = if TemporalVideoQueryEngine::has_data(&io, dir) {
            TemporalVideoQueryEngine::recover(io, dir)?.0
        } else {
            let mut engine = TemporalVideoQueryEngine::builder(config)
                .allow_empty_catalog()
                .build()?;
            engine.attach_durability(io, dir)?;
            engine
        };
        Self::bind_engine(addr, engine)
    }

    fn bind_engine(addr: impl ToSocketAddrs, engine: TemporalVideoQueryEngine) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(QueryServer {
            listener,
            shared: Arc::new(Shared {
                state: Mutex::new(ServerState::new(engine)),
                stopping: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address (resolves the actual port after binding to 0).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the accept loop on the calling thread until an in-band
    /// `SHUTDOWN` (the serve mode of the `tvq-server` binary; tests use
    /// [`spawn`](Self::spawn)). Durable state is flushed and fsynced
    /// before returning.
    pub fn run(self) -> Result<()> {
        let shared = self.shared;
        for stream in self.listener.incoming() {
            if shared.stopping.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&shared);
            let _ = std::thread::Builder::new()
                .name("tvq-server-conn".to_string())
                .spawn(move || serve_connection(stream, &shared));
        }
        shared.sync()
    }

    /// Starts the accept loop on a background thread.
    pub fn spawn(self) -> Result<ServerHandle> {
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let accept_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("tvq-server-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&accept_shared);
                    let _ = std::thread::Builder::new()
                        .name("tvq-server-conn".to_string())
                        .spawn(move || serve_connection(stream, &shared));
                }
            })
            .map_err(Error::Io)?;
        Ok(ServerHandle {
            shared,
            thread: Some(thread),
        })
    }
}

/// Serves one client connection until `QUIT`, `SHUTDOWN`, EOF, or an I/O
/// error.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    while let Ok(Some(payload)) = read_frame_bytes(&mut reader) {
        // A frame that is not UTF-8 is a malformed *command*, not a broken
        // *connection*: the framing layer already consumed the whole
        // payload, so reply ERR and resynchronise on the next frame
        // boundary instead of hanging up on the client.
        let Ok(line) = String::from_utf8(payload) else {
            if write_frame(&mut writer, "ERR command is not valid UTF-8").is_err() {
                break;
            }
            continue;
        };
        let trimmed = line.trim();
        let quit = trimmed.eq_ignore_ascii_case("QUIT");
        // SHUTDOWN is handled here, not in `execute`: it spans the whole
        // server (flush durable state, stop the accept loop), not just the
        // engine. The stop flag is only set once the flush succeeded — a
        // failing disk leaves the server up and the client told.
        let shutdown = trimmed.eq_ignore_ascii_case("SHUTDOWN");
        let response = if shutdown {
            match shared.sync() {
                Ok(()) => {
                    shared.stopping.store(true, Ordering::SeqCst);
                    "OK shutdown".to_string()
                }
                Err(err) => format!("ERR {err}"),
            }
        } else {
            shared
                .state
                .lock()
                // A panic mid-command can only poison between commands'
                // atomic units; the state is still internally consistent.
                .unwrap_or_else(PoisonError::into_inner)
                .execute(&line)
        };
        let stopping = shutdown && shared.stopping.load(Ordering::SeqCst);
        if write_frame(&mut writer, &response).is_err() || quit || stopping {
            if stopping {
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.addr);
            }
            break;
        }
    }
}

/// A running server: its address plus the means to stop it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Stops the accept loop (in-flight connections finish their current
    /// command), joins the accept thread, and flushes + fsyncs durable
    /// state — the programmatic equivalent of the in-band `SHUTDOWN`.
    pub fn stop(mut self) -> Result<()> {
        self.halt();
        self.shared.sync()
    }

    fn halt(&mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.halt();
            let _ = self.shared.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvq_common::WindowSpec;

    fn state() -> ServerState {
        let config = EngineConfig::new(WindowSpec::new(3, 2).unwrap());
        let engine = TemporalVideoQueryEngine::builder(config)
            .allow_empty_catalog()
            .build()
            .unwrap();
        ServerState::new(engine)
    }

    #[test]
    fn command_surface_round_trips_without_sockets() {
        let mut state = state();
        assert_eq!(state.execute("ADD car >= 1"), "OK id=0 version=1");
        assert_eq!(state.execute("SUBSCRIBE cap=8"), "OK sub=0");
        assert_eq!(
            state.execute("FRAME 0 1:car 2:gryphon"),
            "OK frame=0 matches=0 events=0 ignored=1",
            "a label no registry entry covers is counted, not fatal"
        );
        let response = state.execute("FRAME 1 1:car");
        assert!(response.contains("matches=1 events=1"), "{response}");
        let response = state.execute("FRAME 2 1:car");
        assert!(response.contains("matches=1 events=1"), "{response}");
        let poll = state.execute("POLL 0");
        assert!(
            poll.starts_with("OK events=2 dropped=0 remaining=0"),
            "{poll}"
        );
        assert!(poll.contains("query=0 objects=1"), "{poll}");
        assert_eq!(state.execute("REMOVE 0"), "OK removed=0 version=2");
        let stats = state.execute("STATS");
        assert!(stats.contains("version=2 queries=0"), "{stats}");
    }

    #[test]
    fn malformed_commands_err_without_disturbing_state() {
        let mut state = state();
        for bad in [
            "",
            "NONSENSE",
            "ADD",
            "REMOVE x",
            "REMOVE 7",
            "SUBSCRIBE cap=zero",
            "UNSUBSCRIBE 3",
            "FRAME",
            "FRAME 0 nocolon",
            "POLL 9",
        ] {
            let response = state.execute(bad);
            assert!(response.starts_with("ERR"), "{bad:?} -> {response}");
        }
        let stats = state.execute("STATS");
        assert!(stats.contains("version=0 queries=0"), "{stats}");
        assert!(stats.contains("frames=0"), "{stats}");
    }

    #[test]
    fn durable_server_shutdown_and_restart_resume_the_catalog() {
        use crate::ServerClient;

        let disk = tvq_store::MemDisk::new();
        let dir = std::path::Path::new("/server-data");
        let config = EngineConfig::new(WindowSpec::new(3, 2).unwrap());

        let handle = QueryServer::bind_with_store("127.0.0.1:0", config, disk.io(), dir)
            .unwrap()
            .spawn()
            .unwrap();
        let mut client = ServerClient::connect(handle.addr()).unwrap();
        client.expect_ok("ADD car >= 1").unwrap();
        for fid in 0..3u64 {
            client.expect_ok(&format!("FRAME {fid} 1:car")).unwrap();
        }
        // The SIGINT-equivalent in-band hook: flushes + fsyncs, then stops.
        assert_eq!(client.expect_ok("SHUTDOWN").unwrap(), "OK shutdown");
        drop(client);
        handle.stop().unwrap();

        // The restart. The old engine's directory lock is released when the
        // last connection thread drops its handle on the shared state —
        // briefly after `stop` returns — so the rebind retries.
        let server = {
            let mut attempt = 0;
            loop {
                match QueryServer::bind_with_store("127.0.0.1:0", config, disk.io(), dir) {
                    Ok(server) => break server,
                    Err(err) if attempt < 50 => {
                        assert!(err.to_string().contains("already open"), "{err}");
                        attempt += 1;
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    Err(err) => panic!("rebind never succeeded: {err}"),
                }
            }
        };
        let handle = server.spawn().unwrap();
        let mut client = ServerClient::connect(handle.addr()).unwrap();
        let stats = client.expect_ok("STATS").unwrap();
        assert!(stats.contains("version=1 queries=1"), "{stats}");
        assert!(stats.contains("recoveries=1"), "{stats}");
        // The recovered windows are live: the next frame still matches.
        let response = client.expect_ok("FRAME 3 1:car").unwrap();
        assert!(response.contains("matches=1"), "{response}");
        drop(client);
        handle.stop().unwrap();
    }

    #[test]
    fn frame_track_ends_flow_through_to_metrics() {
        let mut state = state();
        state.execute("ADD car >= 1");
        state.execute("FRAME 0 1:car");
        let response = state.execute("FRAME 1 1:car END 1");
        assert!(response.starts_with("OK"), "{response}");
        let stats = state.execute("STATS");
        assert!(stats.contains("tracks_ended=1"), "{stats}");
    }
}
