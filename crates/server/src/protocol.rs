//! Wire framing for the query server.
//!
//! Every message in either direction is one *frame*: a 4-byte big-endian
//! length prefix followed by that many bytes of UTF-8 text. Requests are
//! single-line commands (`ADD car >= 1`); responses start with `OK` or
//! `ERR` and may span multiple lines (POLL returns one `EVENT` line per
//! delivered match). The codec is deliberately std-only — no serde, no
//! async runtime — so the server binary stays dependency-free.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload. A command is a query string or
/// one frame's detections; a megabyte is orders of magnitude above any
/// legitimate message and keeps a corrupt length prefix from allocating
/// gigabytes.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Writes one length-prefixed frame.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", bytes.len()),
        ));
    }
    let len = u32::try_from(bytes.len()).expect("MAX_FRAME_LEN fits in u32");
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()
}

/// Reads one length-prefixed frame's raw bytes. Returns `Ok(None)` on a
/// clean EOF (the peer closed between frames); EOF *inside* a frame is an
/// error. An announced length above [`MAX_FRAME_LEN`] is rejected before
/// any payload buffer is allocated — a corrupt or hostile prefix cannot
/// cost more than the 4 header bytes already read.
pub fn read_frame_bytes(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match reader.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (limit {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads one length-prefixed frame as UTF-8 text. Same contract as
/// [`read_frame_bytes`], plus an `InvalidData` error when the payload is
/// not valid UTF-8 — note the frame *was* fully consumed in that case, so
/// callers that want to keep the connection alive (the server does: it
/// replies `ERR` instead of hanging up) can resynchronise on the next
/// frame boundary.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<String>> {
    match read_frame_bytes(reader)? {
        None => Ok(None),
        Some(payload) => String::from_utf8(payload)
            .map(Some)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, "ADD car >= 1").unwrap();
        write_frame(&mut buffer, "").unwrap();
        write_frame(&mut buffer, "snow ❄ unicode").unwrap();
        let mut cursor = Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), "ADD car >= 1");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), "");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), "snow ❄ unicode");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frames_are_errors_not_eof() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, "STATS").unwrap();
        buffer.truncate(6); // header + one payload byte
        let mut cursor = Cursor::new(&buffer[..]);
        assert!(read_frame(&mut cursor).is_err());
        let mut header_only = Cursor::new(&buffer[..2]);
        assert!(read_frame(&mut header_only).is_err());
    }

    #[test]
    fn oversized_announcements_are_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        let mut cursor = Cursor::new(buffer);
        assert!(read_frame(&mut cursor).is_err());
        let long = "x".repeat(MAX_FRAME_LEN + 1);
        assert!(write_frame(&mut Vec::new(), &long).is_err());
    }
}
