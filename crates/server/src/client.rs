//! Minimal synchronous client for the query server — one request frame in,
//! one response frame out. Used by the smoke binary, the integration
//! tests, and any harness that wants to drive a server without hand-rolling
//! the codec.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use tvq_common::{Error, Result};

use crate::protocol::{read_frame, write_frame};

/// A connected client. Requests are strictly sequential: [`request`]
/// blocks until the server's response frame arrives.
///
/// [`request`]: Self::request
pub struct ServerClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServerClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServerClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one command and returns the raw response payload (starting
    /// with `OK` or `ERR`).
    pub fn request(&mut self, command: &str) -> Result<String> {
        write_frame(&mut self.writer, command)?;
        read_frame(&mut self.reader)?.ok_or_else(|| {
            Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))
        })
    }

    /// Like [`request`](Self::request) but fails on an `ERR` response,
    /// returning the payload with the `OK ` prefix intact.
    pub fn expect_ok(&mut self, command: &str) -> Result<String> {
        let response = self.request(command)?;
        if response.starts_with("OK") {
            Ok(response)
        } else {
            Err(Error::InvalidConfig(format!(
                "server rejected {command:?}: {response}"
            )))
        }
    }

    /// Sends `QUIT` and discards the farewell.
    pub fn quit(mut self) -> Result<()> {
        let _ = self.request("QUIT")?;
        Ok(())
    }
}
