//! Standalone TCP front-end for the temporal video query engine.
//!
//! The engine crate covers the *embedded* deployment: link `tvq-engine`,
//! stream [`FrameObjects`](tvq_common::FrameObjects) in, read matches out.
//! This crate covers the *server* deployment the paper's "millions of
//! users" framing implies: one process owns the engine and a
//! [`SubscriptionHub`](tvq_engine::SubscriptionHub), and remote clients
//! register/cancel queries, push frames, and poll their match queues over
//! TCP — length-prefixed UTF-8 text frames ([`protocol`]), one thread per
//! connection, standard library only.
//!
//! ```no_run
//! use tvq_common::WindowSpec;
//! use tvq_engine::EngineConfig;
//! use tvq_server::{QueryServer, ServerClient};
//!
//! let config = EngineConfig::new(WindowSpec::new(8, 4).unwrap());
//! let handle = QueryServer::bind("127.0.0.1:0", config).unwrap().spawn().unwrap();
//! let mut client = ServerClient::connect(handle.addr()).unwrap();
//! client.expect_ok("ADD car >= 1").unwrap();
//! client.expect_ok("SUBSCRIBE cap=16").unwrap();
//! client.expect_ok("FRAME 0 1:car").unwrap();
//! println!("{}", client.expect_ok("POLL 0").unwrap());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::ServerClient;
pub use server::{QueryServer, ServerHandle};
