//! The `tvq-server` binary.
//!
//! Two modes:
//!
//! * **serve** (default): bind `--addr` and serve clients until a client
//!   issues `SHUTDOWN` (or the process is killed). With `--data-dir` the
//!   engine runs durably: every acknowledged operation is WAL-logged and
//!   fsynced, snapshots land at compaction epochs, and a restart over the
//!   same directory recovers the catalog and windows.
//!
//!   ```text
//!   tvq-server --addr 127.0.0.1:7878 --window 8 --duration 4 \
//!       --data-dir /var/lib/tvq
//!   ```
//!
//! * **smoke** (`--smoke [--json]`): spin up a server on an ephemeral
//!   port, drive a scripted client session through the full command
//!   surface — register and cancel queries, round-trip a match through a
//!   subscription, overflow a tiny subscriber queue to observe
//!   backpressure drops — and gate on the results. `--json` writes
//!   `BENCH_server_smoke.json` for the CI artifact trail.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use tvq_common::{Error, Result, WindowSpec};
use tvq_engine::EngineConfig;
use tvq_server::{QueryServer, ServerClient};

struct Args {
    addr: String,
    window: usize,
    duration: usize,
    data_dir: Option<std::path::PathBuf>,
    smoke: bool,
    json: bool,
}

fn parse_args() -> Result<Args> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        window: 8,
        duration: 4,
        data_dir: None,
        smoke: false,
        json: false,
    };
    let mut raw = std::env::args().skip(1);
    while let Some(flag) = raw.next() {
        let mut value = |name: &str| {
            raw.next()
                .ok_or_else(|| Error::InvalidConfig(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|_| Error::InvalidConfig("bad --window".to_string()))?
            }
            "--duration" => {
                args.duration = value("--duration")?
                    .parse()
                    .map_err(|_| Error::InvalidConfig("bad --duration".to_string()))?
            }
            "--data-dir" => args.data_dir = Some(value("--data-dir")?.into()),
            "--smoke" => args.smoke = true,
            "--json" => args.json = true,
            other => {
                return Err(Error::InvalidConfig(format!("unknown flag {other:?}")));
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("tvq-server: {err}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.smoke {
        smoke(&args)
    } else {
        serve(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("tvq-server: {err}");
            ExitCode::FAILURE
        }
    }
}

fn config(args: &Args) -> Result<EngineConfig> {
    Ok(EngineConfig::new(WindowSpec::new(
        args.window,
        args.duration,
    )?))
}

fn bind(args: &Args, addr: &str) -> Result<QueryServer> {
    match &args.data_dir {
        Some(dir) => QueryServer::bind_durable(addr, config(args)?, dir),
        None => QueryServer::bind(addr, config(args)?),
    }
}

fn serve(args: &Args) -> Result<()> {
    let server = bind(args, args.addr.as_str())?;
    match &args.data_dir {
        Some(dir) => println!(
            "tvq-server listening on {} (durable at {})",
            server.local_addr()?,
            dir.display()
        ),
        None => println!("tvq-server listening on {}", server.local_addr()?),
    }
    // Runs until a client issues SHUTDOWN; durable state is flushed and
    // fsynced before the call returns.
    server.run()
}

/// Extracts `key=<u64>` from a server response.
fn field(response: &str, key: &str) -> Result<u64> {
    response
        .split_whitespace()
        .find_map(|token| token.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
        .ok_or_else(|| Error::InvalidConfig(format!("no {key}= field in response {response:?}")))
}

fn gate(condition: bool, what: &str) -> Result<()> {
    if condition {
        Ok(())
    } else {
        Err(Error::InvalidConfig(format!("smoke gate failed: {what}")))
    }
}

fn smoke(args: &Args) -> Result<()> {
    let started = Instant::now();
    let handle = bind(args, "127.0.0.1:0")?.spawn()?;
    let outcome = smoke_session(args, handle.addr());
    let stopped = handle.stop();
    let report = outcome?;
    stopped?;
    println!(
        "server smoke: frames={} delivered={} dropped={} version={} in {:?}",
        report.frames,
        report.delivered,
        report.dropped,
        report.final_version,
        started.elapsed()
    );
    if args.json {
        let json = format!(
            concat!(
                "{{\"scenario\":\"server_smoke\",\"frames\":{},\"adds\":{},",
                "\"removes\":{},\"final_version\":{},\"published\":{},",
                "\"delivered\":{},\"dropped\":{},\"elapsed_ms\":{}}}"
            ),
            report.frames,
            report.adds,
            report.removes,
            report.final_version,
            report.published,
            report.delivered,
            report.dropped,
            started.elapsed().as_millis()
        );
        fs::write("BENCH_server_smoke.json", json)?;
        println!("wrote BENCH_server_smoke.json");
    }
    Ok(())
}

struct SmokeReport {
    frames: u64,
    adds: u64,
    removes: u64,
    final_version: u64,
    published: u64,
    delivered: u64,
    dropped: u64,
}

fn smoke_session(args: &Args, addr: std::net::SocketAddr) -> Result<SmokeReport> {
    let mut client = ServerClient::connect(addr)?;

    // Register: a conjunctive query and a throwaway second one.
    let added = client.expect_ok("ADD car >= 1 AND person >= 1")?;
    let pair = field(&added, "id")?;
    let throwaway = field(&client.expect_ok("ADD bus >= 2")?, "id")?;
    gate(throwaway == pair + 1, "ids mint sequentially")?;

    // A roomy subscriber and a cap=2 one to force backpressure drops.
    let roomy = field(&client.expect_ok("SUBSCRIBE cap=1024")?, "sub")?;
    let tiny = field(
        &client.expect_ok(&format!("SUBSCRIBE cap=2 {pair}"))?,
        "sub",
    )?;

    // Stream frames with a co-occurring car+person: every full window
    // matches, so the tiny queue overflows well before the stream ends.
    let frames = (args.window as u64) * 4;
    for fid in 0..frames {
        client.expect_ok(&format!("FRAME {fid} 1:car 2:person"))?;
    }

    // Cancel the throwaway query; the catalog version keeps counting.
    let removed = client.expect_ok(&format!("REMOVE {throwaway}"))?;
    let final_version = field(&removed, "version")?;
    gate(final_version == 3, "two adds + one remove = version 3")?;

    // Match round-trip: the roomy subscriber saw every published event.
    let poll = client.expect_ok(&format!("POLL {roomy} 4096"))?;
    let delivered = field(&poll, "events")?;
    gate(delivered > 0, "at least one match round-tripped")?;
    gate(
        poll.lines().skip(1).all(|line| line.starts_with("EVENT")),
        "poll body is EVENT lines",
    )?;
    gate(
        poll.lines()
            .any(|line| line.contains(&format!("query={pair}"))),
        "the conjunctive query's matches were dispatched",
    )?;

    // Backpressure: the tiny queue kept only its 2 newest events.
    let tiny_poll = client.expect_ok(&format!("POLL {tiny} 4096"))?;
    let dropped = field(&tiny_poll, "dropped")?;
    gate(field(&tiny_poll, "events")? == 2, "tiny queue holds 2")?;
    gate(dropped > 0, "tiny queue recorded drops")?;

    // A second concurrent connection sees the same state.
    let mut observer = ServerClient::connect(addr)?;
    let stats = observer.expect_ok("STATS")?;
    gate(field(&stats, "queries")? == 1, "one query survives")?;
    gate(field(&stats, "subscribers")? == 2, "two subscribers")?;
    let published = field(&stats, "published")?;
    gate(published >= delivered, "published covers delivered")?;
    client.quit()?;
    // Graceful shutdown is part of the smoke surface: the in-band hook
    // flushes + fsyncs durable state (a no-op without --data-dir) before
    // the accept loop stops.
    let bye = observer.expect_ok("SHUTDOWN")?;
    gate(bye == "OK shutdown", "graceful shutdown acknowledged")?;

    Ok(SmokeReport {
        frames,
        adds: 2,
        removes: 1,
        final_version,
        published,
        delivered,
        dropped,
    })
}
