//! Umbrella crate for the temporal video query engine.
//!
//! This workspace reproduces *Evaluating Temporal Queries Over Video Feeds*
//! (Chen, Yu, Koudas — SIGMOD 2021). The `tvq` crate simply re-exports the
//! layered crates so examples, integration tests and downstream users can
//! depend on one name:
//!
//! * [`common`] — shared ids, object/frame sets, windows, relations, I/O;
//! * [`video`] — the simulated vision substrate producing `VR(fid, id, class)`;
//! * [`core`] — MCOS generation (NAIVE / MFS / SSG + reference oracle);
//! * [`query`] — CNF query model, parser, evaluator and pruning;
//! * [`engine`] — the end-to-end engine wiring all layers together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tvq_common as common;
pub use tvq_core as core;
pub use tvq_engine as engine;
pub use tvq_query as query;
pub use tvq_video as video;
