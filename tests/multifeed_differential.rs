//! Differential suite for the sharded multi-feed engine.
//!
//! A sharded [`MultiFeedEngine`](tvq_engine::MultiFeedEngine) run must be
//! frame-for-frame identical to N independent single-feed engine runs over
//! the same feeds: sharding, batching and worker count are pure deployment
//! choices that may never change query results or per-feed metrics. The
//! heavy lifting lives in `tvq_testkit::assert_multifeed_equals_single`;
//! this suite sweeps maintainer kinds, pruning, worker counts, batch sizes
//! and seeds — plus the scheduling dimension: rebalancing on/off/aggressive,
//! forced per-batch migrations, and the skewed camera grid the
//! work-stealing scheduler exists for.

use tvq_common::{ClassId, FeedId, FrameId, FrameObjects, ObjectId, WindowSpec};
use tvq_core::{CompactionPolicy, MaintainerKind};
use tvq_engine::{
    EngineConfig, FeedFrame, MultiFeedConfig, MultiFeedEngine, TemporalVideoQueryEngine,
};
use tvq_testkit::{
    assert_multifeed_config_equals_single, assert_multifeed_equals_single, multi_feed_classed,
    skewed_grid, SkewProfile,
};

/// Classes in the generated feeds: even object ids are people (class 0),
/// odd ids are cars (class 1).
const QUERIES: &[&str] = &["car >= 1 AND person >= 1", "car >= 2"];

fn config(kind: MaintainerKind, pruning: bool) -> EngineConfig {
    EngineConfig::new(WindowSpec::new(6, 3).unwrap())
        .with_maintainer(kind)
        .with_pruning(pruning)
}

#[test]
fn sharded_runs_match_single_feed_oracles_for_both_maintainers() {
    for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
        for seed in [1u64, 42] {
            let feeds = multi_feed_classed(seed, 4, 30, 6, 0.25, 2);
            for workers in [1usize, 2, 3] {
                assert_multifeed_equals_single(&feeds, config(kind, false), QUERIES, workers, 8);
            }
        }
    }
}

#[test]
fn sharded_runs_match_single_feed_oracles_with_pruning_enabled() {
    // All queries are `>=`-only, so the engines run their `_O` pruning
    // variants; pruning decisions must also be identical across sharding.
    for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
        for seed in [7u64, 99] {
            let feeds = multi_feed_classed(seed, 5, 30, 7, 0.3, 2);
            for workers in [2usize, 4] {
                assert_multifeed_equals_single(&feeds, config(kind, true), QUERIES, workers, 11);
            }
        }
    }
}

#[test]
fn batch_size_is_immaterial() {
    let feeds = multi_feed_classed(13, 3, 24, 6, 0.2, 2);
    let config = config(MaintainerKind::Ssg, true);
    for batch_size in [1usize, 3, 64] {
        assert_multifeed_equals_single(&feeds, config, QUERIES, 2, batch_size);
    }
}

#[test]
fn more_workers_than_feeds_is_fine() {
    let feeds = multi_feed_classed(21, 2, 20, 5, 0.25, 2);
    assert_multifeed_equals_single(&feeds, config(MaintainerKind::Mfs, true), QUERIES, 8, 4);
}

/// Determinism under work stealing: rebalancing (off, default cadence, and
/// the most aggressive setting the config allows) must be invisible to
/// results — every configuration stays frame-for-frame identical to the
/// single-feed oracles, for both pruning-capable maintainers.
#[test]
fn rebalancing_is_invisible_to_results() {
    for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
        let feeds = multi_feed_classed(17, 5, 30, 6, 0.25, 2);
        for workers in [1usize, 2, 4] {
            for (interval, threshold) in [(0u64, 1.5f64), (8, 1.5), (1, 1.0)] {
                assert_multifeed_config_equals_single(
                    &feeds,
                    MultiFeedConfig::new(config(kind, true))
                        .with_workers(workers)
                        .with_rebalance_interval(interval)
                        .with_steal_threshold(threshold),
                    QUERIES,
                    7,
                    false,
                );
            }
        }
    }
}

/// The adversarial schedule: every feed is force-migrated to a rotating
/// worker after every batch. Migration in any pattern, at any frequency,
/// must never change results, per-feed metrics, or reports.
#[test]
fn forced_migrations_every_batch_are_invisible_to_results() {
    for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
        let feeds = multi_feed_classed(29, 4, 24, 6, 0.25, 2);
        for workers in [2usize, 4] {
            assert_multifeed_config_equals_single(
                &feeds,
                MultiFeedConfig::new(config(kind, true))
                    .with_workers(workers)
                    .with_rebalance_interval(3),
                QUERIES,
                5,
                true,
            );
        }
    }
}

/// The skewed-grid workload the scheduler exists for (hot cameras colliding
/// on one static shard, hotspot flip mid-run) must also be deterministic:
/// the rebalanced sharded run stays identical to the single-feed oracles
/// even while the scheduler is actively migrating the hot feeds.
#[test]
fn skewed_grid_with_rebalancing_matches_oracles() {
    let mut profile = SkewProfile::new(48);
    profile.feeds = 8;
    profile.hot_objects = 10;
    let feeds = skewed_grid(&profile);
    for (interval, threshold) in [(0u64, 1.5f64), (2, 1.25)] {
        assert_multifeed_config_equals_single(
            &feeds,
            MultiFeedConfig::new(config(MaintainerKind::Ssg, true))
                .with_workers(4)
                .with_rebalance_interval(interval)
                .with_steal_threshold(threshold),
            QUERIES,
            8,
            false,
        );
    }
}

/// Shard sharing: with one class store across shards, epoch retirement on
/// one shard must never evict a class mapping another shard still tracks.
/// Feed 0 churns through throwaway objects (its early ids retire under the
/// forced compaction policy) while feed 1 keeps observing the same global
/// ids 1 and 2 every frame; feed 1's results must stay frame-for-frame
/// identical to a dedicated single-feed engine with a private store.
#[test]
fn shared_store_retirement_on_one_shard_does_not_starve_another() {
    let engine_config = EngineConfig::new(WindowSpec::new(4, 2).unwrap())
        .with_maintainer(MaintainerKind::Ssg)
        .with_compaction(Some(CompactionPolicy::every(1)));
    let mut multi = MultiFeedEngine::builder(
        MultiFeedConfig::new(engine_config)
            .with_workers(2)
            .with_shared_class_store(true),
    )
    .with_query_text("car >= 1 AND person >= 1")
    .unwrap()
    .build()
    .unwrap();
    let mut oracle = TemporalVideoQueryEngine::builder(engine_config)
        .with_query_text("car >= 1 AND person >= 1")
        .unwrap()
        .build()
        .unwrap();

    let churn_frame = |fid: u64| {
        // Feed 0 sees the shared pair briefly, then rotating throwaway
        // cars: ids 1 and 2 leave its window and retire on shard 0.
        let detections = if fid < 3 {
            vec![(ObjectId(1), ClassId(1)), (ObjectId(2), ClassId(0))]
        } else {
            vec![
                (ObjectId(100 + fid as u32), ClassId(1)),
                (ObjectId(200 + fid as u32), ClassId(0)),
            ]
        };
        FrameObjects::new(FrameId(fid), detections)
    };
    let stable_frame = |fid: u64| {
        // The pair plus a rotating guest: every couple of frames feed 1
        // interns a *new* set containing ids 1 and 2, whose class counts
        // are aggregated from the shared store at intern time — so a wrong
        // eviction of 1 or 2 surfaces as a result divergence instead of
        // hiding behind previously cached counts.
        FrameObjects::new(
            FrameId(fid),
            vec![
                (ObjectId(1), ClassId(1)),
                (ObjectId(2), ClassId(0)),
                (ObjectId(300 + (fid / 2) as u32), ClassId(0)),
            ],
        )
    };

    for fid in 0..40u64 {
        let batch = vec![
            FeedFrame::new(FeedId(0), churn_frame(fid)),
            FeedFrame::new(FeedId(1), stable_frame(fid)),
        ];
        let results = multi.push_batch(&batch).unwrap();
        let expected = oracle.observe(&stable_frame(fid)).unwrap();
        assert_eq!(
            results[1].result, expected,
            "feed 1 diverged from its oracle at frame {fid} — a shared-store \
             eviction took a mapping a live shard still needed"
        );
    }

    let report = multi.report().unwrap();
    let feed0 = &report.feeds[0];
    assert!(
        feed0.metrics.objects_retired > 0,
        "feed 0 never retired anything — the test is not exercising \
         shared-store eviction (compactions: {})",
        feed0.metrics.compactions
    );
    assert!(
        report.feeds[1].matching_frames >= 38,
        "feed 1 should keep matching throughout"
    );
}
