//! Differential suite for the sharded multi-feed engine.
//!
//! A sharded [`MultiFeedEngine`](tvq_engine::MultiFeedEngine) run must be
//! frame-for-frame identical to N independent single-feed engine runs over
//! the same feeds: sharding, batching and worker count are pure deployment
//! choices that may never change query results or per-feed metrics. The
//! heavy lifting lives in `tvq_testkit::assert_multifeed_equals_single`;
//! this suite sweeps maintainer kinds, pruning, worker counts, batch sizes
//! and seeds.

use tvq_common::WindowSpec;
use tvq_core::MaintainerKind;
use tvq_engine::EngineConfig;
use tvq_testkit::{assert_multifeed_equals_single, multi_feed_classed};

/// Classes in the generated feeds: even object ids are people (class 0),
/// odd ids are cars (class 1).
const QUERIES: &[&str] = &["car >= 1 AND person >= 1", "car >= 2"];

fn config(kind: MaintainerKind, pruning: bool) -> EngineConfig {
    EngineConfig::new(WindowSpec::new(6, 3).unwrap())
        .with_maintainer(kind)
        .with_pruning(pruning)
}

#[test]
fn sharded_runs_match_single_feed_oracles_for_both_maintainers() {
    for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
        for seed in [1u64, 42] {
            let feeds = multi_feed_classed(seed, 4, 30, 6, 0.25, 2);
            for workers in [1usize, 2, 3] {
                assert_multifeed_equals_single(&feeds, config(kind, false), QUERIES, workers, 8);
            }
        }
    }
}

#[test]
fn sharded_runs_match_single_feed_oracles_with_pruning_enabled() {
    // All queries are `>=`-only, so the engines run their `_O` pruning
    // variants; pruning decisions must also be identical across sharding.
    for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
        for seed in [7u64, 99] {
            let feeds = multi_feed_classed(seed, 5, 30, 7, 0.3, 2);
            for workers in [2usize, 4] {
                assert_multifeed_equals_single(&feeds, config(kind, true), QUERIES, workers, 11);
            }
        }
    }
}

#[test]
fn batch_size_is_immaterial() {
    let feeds = multi_feed_classed(13, 3, 24, 6, 0.2, 2);
    let config = config(MaintainerKind::Ssg, true);
    for batch_size in [1usize, 3, 64] {
        assert_multifeed_equals_single(&feeds, config, QUERIES, 2, batch_size);
    }
}

#[test]
fn more_workers_than_feeds_is_fine() {
    let feeds = multi_feed_classed(21, 2, 20, 5, 0.25, 2);
    assert_multifeed_equals_single(&feeds, config(MaintainerKind::Mfs, true), QUERIES, 8, 4);
}
