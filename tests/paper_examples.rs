//! The paper's worked examples, checked end to end through the public API.

use tvq_common::{ClassId, FrameId, FrameObjects, ObjectId, ObjectSet, WindowSpec};
use tvq_core::{mcos_of_window, MaintainerKind};
use tvq_engine::{EngineConfig, TemporalVideoQueryEngine};

/// Section 2's video feed ({B},{ABC},{ABDF},{ABCF},{ABD}) with A..F mapped to
/// object ids 1..6; every object is a car except A which is a person.
fn paper_feed() -> Vec<FrameObjects> {
    let person = ClassId(0);
    let car = ClassId(1);
    let class_of = |o: u32| if o == 1 { person } else { car };
    let frames: Vec<Vec<u32>> = vec![
        vec![2],
        vec![1, 2, 3],
        vec![1, 2, 4, 6],
        vec![1, 2, 3, 6],
        vec![1, 2, 4],
    ];
    frames
        .into_iter()
        .enumerate()
        .map(|(fid, objs)| {
            FrameObjects::new(
                FrameId(fid as u64),
                objs.into_iter()
                    .map(|o| (ObjectId(o), class_of(o)))
                    .collect(),
            )
        })
        .collect()
}

/// "Select the video frames where some objects appear jointly for at least 3
/// frames in a window of 5 frames" → object sets {B} and {AB} (Section 2).
#[test]
fn section_2_window_5_duration_3() {
    let window: Vec<(FrameId, ObjectSet)> = paper_feed()
        .iter()
        .map(|f| (f.fid, f.objects.clone()))
        .collect();
    let results = mcos_of_window(&window, 3);
    let sets: Vec<ObjectSet> = results.iter().map(|(s, _)| s.clone()).collect();
    assert_eq!(sets.len(), 2);
    assert!(sets.contains(&ObjectSet::from_raw([2])));
    assert!(sets.contains(&ObjectSet::from_raw([1, 2])));
}

/// Relaxing the duration to 2 adds {ABC}, {ABD} and {ABF} (Section 2).
#[test]
fn section_2_window_5_duration_2() {
    let window: Vec<(FrameId, ObjectSet)> = paper_feed()
        .iter()
        .map(|f| (f.fid, f.objects.clone()))
        .collect();
    let results = mcos_of_window(&window, 2);
    assert_eq!(results.len(), 5);
}

/// Tables 1 and 2 use w=4, d=3: at frame 4 the only satisfied MCOS is {AB},
/// which the engine reports as a match for "car >= 1 AND person >= 1"
/// (A is a person, B is a car) under every strategy.
#[test]
fn tables_1_and_2_final_window_through_the_engine() {
    for kind in MaintainerKind::PRODUCTION {
        let mut engine = TemporalVideoQueryEngine::builder(
            EngineConfig::new(WindowSpec::new(4, 3).unwrap())
                .with_maintainer(kind)
                .with_pruning(false),
        )
        .with_query_text("car >= 1 AND person >= 1")
        .unwrap()
        .build()
        .unwrap();

        let mut results = Vec::new();
        for frame in paper_feed() {
            results.push(engine.observe(&frame).unwrap());
        }
        // Frames 0-1: nothing satisfies d=3 yet.
        assert!(!results[0].any(), "{kind:?}");
        assert!(!results[1].any(), "{kind:?}");
        // Frame 2: the only satisfied MCOS is {B}, which has no person, so the
        // query still does not match.
        assert!(!results[2].any(), "{kind:?}");
        // Frames 3 and 4: {AB} (a person and a car) satisfies the query.
        for fid in [3usize, 4] {
            let matched: Vec<&ObjectSet> =
                results[fid].matches.iter().map(|m| &m.objects).collect();
            assert!(
                matched.contains(&&ObjectSet::from_raw([1, 2])),
                "{kind:?} frame {fid}: expected {{A,B}} in {matched:?}"
            );
        }
        // At frame 4, {B} alone is not an MCOS any more (Table 1), so no
        // car-only match may be reported for it.
        assert!(results[4]
            .matches
            .iter()
            .all(|m| m.objects != ObjectSet::from_raw([2])));
    }
}

/// The q1 example of Section 5.1 (set-membership CNF) translated to our count
/// semantics, and q2 of Section 5.2 evaluated through the inverted index.
#[test]
fn section_5_q2_through_the_evaluator() {
    use tvq_query::{CnfEvaluator, CnfQuery, Condition};
    let car = ClassId(1);
    let person = ClassId(0);
    let q2 = CnfQuery::new(
        tvq_common::QueryId(2),
        vec![
            vec![Condition::at_least(car, 2), Condition::at_most(person, 3)],
            vec![Condition::at_least(car, 3), Condition::at_least(person, 2)],
            vec![Condition::at_most(car, 5)],
        ],
    );
    let evaluator = CnfEvaluator::new(vec![q2]);
    let counts = |cars: u32, people: u32| {
        tvq_query::ClassCounts::from_map([(car, cars), (person, people)].into_iter().collect())
    };
    assert!(evaluator.any_satisfied(&counts(3, 0)));
    assert!(evaluator.any_satisfied(&counts(2, 2)));
    assert!(!evaluator.any_satisfied(&counts(1, 1)));
    assert!(!evaluator.any_satisfied(&counts(6, 2)));
}
