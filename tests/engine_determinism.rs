//! Instance-determinism regression suite.
//!
//! Two engines built from the same configuration must produce *identical*
//! results **and metrics** when fed the same frames — even within one
//! process, where every `HashMap` instance gets its own random hash seed.
//! The SSG maintainer's periodic sweep used to remove expired nodes in
//! `HashMap` iteration order, which rewired edges in a run-dependent order
//! and made `edges_added`/`edges_removed` differ between identical runs;
//! `StateGraph::live_ids` now iterates in sorted slab order. Without this
//! property the multi-feed engine's merged reports could not be compared
//! against single-feed oracles.

use tvq_common::WindowSpec;
use tvq_core::MaintainerKind;
use tvq_engine::{EngineConfig, TemporalVideoQueryEngine};
use tvq_testkit::multi_feed_classed;

fn build(config: EngineConfig) -> TemporalVideoQueryEngine {
    TemporalVideoQueryEngine::builder(config)
        .with_query_text("car >= 1 AND person >= 1")
        .unwrap()
        .with_query_text("car >= 2")
        .unwrap()
        .build()
        .unwrap()
}

#[test]
fn identical_engines_agree_on_results_and_metrics() {
    for kind in [
        MaintainerKind::Naive,
        MaintainerKind::Mfs,
        MaintainerKind::Ssg,
    ] {
        for pruning in [false, true] {
            let config = EngineConfig::new(WindowSpec::new(6, 3).unwrap())
                .with_maintainer(kind)
                .with_pruning(pruning);
            for feed in &multi_feed_classed(13, 3, 40, 6, 0.2, 2) {
                let mut a = build(config);
                let mut b = build(config);
                for frame in &feed.frames {
                    let ra = a.observe(frame).unwrap();
                    let rb = b.observe(frame).unwrap();
                    assert_eq!(ra, rb, "{kind:?} results diverged at {}", frame.fid);
                    assert_eq!(
                        a.metrics(),
                        b.metrics(),
                        "{kind:?} (pruning={pruning}) metrics diverged at feed {} frame {}",
                        feed.feed,
                        frame.fid
                    );
                }
                assert_eq!(a.live_states(), b.live_states());
            }
        }
    }
}
