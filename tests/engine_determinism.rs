//! Instance-determinism regression suite.
//!
//! Two engines built from the same configuration must produce *identical*
//! results **and metrics** when fed the same frames — even within one
//! process, where every `HashMap` instance gets its own random hash seed.
//! The SSG maintainer's periodic sweep used to remove expired nodes in
//! `HashMap` iteration order, which rewired edges in a run-dependent order
//! and made `edges_added`/`edges_removed` differ between identical runs;
//! `StateGraph::live_ids` now iterates in sorted slab order. Without this
//! property the multi-feed engine's merged reports could not be compared
//! against single-feed oracles.

use tvq_common::{MemoConfig, WindowSpec};
use tvq_core::{CompactionPolicy, MaintainerKind};
use tvq_engine::{EngineConfig, TemporalVideoQueryEngine};
use tvq_testkit::multi_feed_classed;

fn build(config: EngineConfig) -> TemporalVideoQueryEngine {
    TemporalVideoQueryEngine::builder(config)
        .with_query_text("car >= 1 AND person >= 1")
        .unwrap()
        .with_query_text("car >= 2")
        .unwrap()
        .build()
        .unwrap()
}

/// Interner compaction is deterministic and semantically invisible: with
/// compaction forced at a fixed cadence, (a) two identical engines stay
/// result- and metric-identical — compaction epochs fire at the same frames
/// and rebuild identical arenas — and (b) the results match a compaction-free
/// engine frame for frame.
#[test]
fn forced_compaction_is_deterministic_and_invisible() {
    let force = CompactionPolicy::every(4);
    for kind in [
        MaintainerKind::Naive,
        MaintainerKind::Mfs,
        MaintainerKind::Ssg,
    ] {
        for pruning in [false, true] {
            let compacting = EngineConfig::new(WindowSpec::new(6, 3).unwrap())
                .with_maintainer(kind)
                .with_pruning(pruning)
                .with_compaction(Some(force));
            let plain = compacting.with_compaction(None);
            let mut epochs = 0u64;
            for feed in &multi_feed_classed(29, 3, 48, 8, 0.3, 2) {
                let mut a = build(compacting);
                let mut b = build(compacting);
                let mut reference = build(plain);
                for frame in &feed.frames {
                    let ra = a.observe(frame).unwrap();
                    let rb = b.observe(frame).unwrap();
                    let rr = reference.observe(frame).unwrap();
                    assert_eq!(ra, rb, "{kind:?} twin runs diverged at {}", frame.fid);
                    assert_eq!(
                        a.metrics(),
                        b.metrics(),
                        "{kind:?} (pruning={pruning}) twin metrics diverged at feed {} frame {}",
                        feed.feed,
                        frame.fid
                    );
                    assert_eq!(
                        ra, rr,
                        "{kind:?} compaction changed results at feed {} frame {}",
                        feed.feed, frame.fid
                    );
                }
                assert_eq!(a.live_states(), reference.live_states());
                epochs += a.metrics().compactions;
            }
            assert!(
                epochs > 0,
                "{kind:?} (pruning={pruning}): the forced policy never compacted — \
                 the regression suite is not exercising the epoch lifecycle"
            );
        }
    }
}

/// Intersection-memo resizing is deterministic and semantically invisible:
/// a memo so small it is forced through grow transitions mid-run produces
/// (a) twin-identical results *and metrics* — the adaptation inputs are
/// deterministic, so two identical engines resize at identical probes —
/// and (b) the same results as an engine with the fixed 32k cache, frame
/// for frame. A cache can change only speed, never answers.
#[test]
fn forced_memo_resizes_are_semantically_invisible() {
    let tiny = MemoConfig {
        initial_bits: 1,
        max_bits: 6,
        sample_window: 16,
        grow_miss_rate: 0.1,
    };
    for kind in [
        MaintainerKind::Naive,
        MaintainerKind::Mfs,
        MaintainerKind::Ssg,
    ] {
        let resizing = EngineConfig::new(WindowSpec::new(6, 3).unwrap())
            .with_maintainer(kind)
            .with_memo(tiny);
        let fixed = resizing.with_memo(MemoConfig::fixed(15));
        let mut resizes = 0u64;
        for feed in &multi_feed_classed(17, 3, 48, 8, 0.3, 2) {
            let mut a = build(resizing);
            let mut b = build(resizing);
            let mut reference = build(fixed);
            for frame in &feed.frames {
                let ra = a.observe(frame).unwrap();
                let rb = b.observe(frame).unwrap();
                let rr = reference.observe(frame).unwrap();
                assert_eq!(ra, rb, "{kind:?} twin runs diverged at {}", frame.fid);
                assert_eq!(
                    a.metrics(),
                    b.metrics(),
                    "{kind:?} twin metrics diverged at feed {} frame {}",
                    feed.feed,
                    frame.fid
                );
                assert_eq!(
                    ra, rr,
                    "{kind:?} memo resizing changed results at feed {} frame {}",
                    feed.feed, frame.fid
                );
            }
            assert_eq!(a.live_states(), reference.live_states());
            resizes += a.metrics().intersection_cache_resizes;
            assert_eq!(
                reference.metrics().intersection_cache_resizes,
                0,
                "the fixed memo must never resize"
            );
        }
        assert!(
            resizes > 0,
            "{kind:?}: the tiny memo never resized — the suite is not \
             exercising the adaptation path"
        );
    }
}

#[test]
fn identical_engines_agree_on_results_and_metrics() {
    for kind in [
        MaintainerKind::Naive,
        MaintainerKind::Mfs,
        MaintainerKind::Ssg,
    ] {
        for pruning in [false, true] {
            let config = EngineConfig::new(WindowSpec::new(6, 3).unwrap())
                .with_maintainer(kind)
                .with_pruning(pruning);
            for feed in &multi_feed_classed(13, 3, 40, 6, 0.2, 2) {
                let mut a = build(config);
                let mut b = build(config);
                for frame in &feed.frames {
                    let ra = a.observe(frame).unwrap();
                    let rb = b.observe(frame).unwrap();
                    assert_eq!(ra, rb, "{kind:?} results diverged at {}", frame.fid);
                    assert_eq!(
                        a.metrics(),
                        b.metrics(),
                        "{kind:?} (pruning={pruning}) metrics diverged at feed {} frame {}",
                        feed.feed,
                        frame.fid
                    );
                }
                assert_eq!(a.live_states(), b.live_states());
            }
        }
    }
}
