//! Cross-crate differential test: on realistic profile-generated feeds the
//! three maintainers must report exactly the same Result State Sets, with and
//! without query-driven pruning leaving the *query answers* unchanged.

use std::collections::BTreeSet;

use tvq_common::{FrameId, ObjectSet, WindowSpec};
use tvq_core::{MaintainerKind, StateMaintainer};
use tvq_video::{generate_with_id_reuse, DatasetProfile};

fn result_fingerprint(maintainer: &dyn StateMaintainer) -> BTreeSet<(ObjectSet, Vec<FrameId>)> {
    maintainer
        .results()
        .iter()
        .map(|(set, frames)| (set.clone(), frames.to_vec()))
        .collect()
}

fn assert_equivalent_on(profile: DatasetProfile, po: u32, seed: u64, spec: WindowSpec) {
    let relation = generate_with_id_reuse(&profile, po, seed);
    let mut naive = MaintainerKind::Naive.build(spec);
    let mut mfs = MaintainerKind::Mfs.build(spec);
    let mut ssg = MaintainerKind::Ssg.build(spec);
    for frame in relation.frames() {
        naive.advance(frame.fid, &frame.objects).unwrap();
        mfs.advance(frame.fid, &frame.objects).unwrap();
        ssg.advance(frame.fid, &frame.objects).unwrap();
        let expected = result_fingerprint(naive.as_ref());
        assert_eq!(
            result_fingerprint(mfs.as_ref()),
            expected,
            "MFS diverged from NAIVE at frame {} ({}, po={po})",
            frame.fid,
            profile.name
        );
        assert_eq!(
            result_fingerprint(ssg.as_ref()),
            expected,
            "SSG diverged from NAIVE at frame {} ({}, po={po})",
            frame.fid,
            profile.name
        );
    }
}

#[test]
fn equivalence_on_truncated_static_camera_profiles() {
    for profile in [DatasetProfile::v1(), DatasetProfile::d2()] {
        assert_equivalent_on(
            profile.truncated(160),
            0,
            13,
            WindowSpec::new(30, 20).unwrap(),
        );
    }
}

#[test]
fn equivalence_on_truncated_moving_camera_profiles() {
    for profile in [DatasetProfile::m1(), DatasetProfile::m2()] {
        assert_equivalent_on(
            profile.truncated(160),
            0,
            29,
            WindowSpec::new(25, 10).unwrap(),
        );
    }
}

#[test]
fn equivalence_under_artificial_occlusion() {
    // The Figure 7 regime: id reuse po > 0 creates many more shared objects
    // between states, stressing the marking rules.
    for po in [1, 2, 3] {
        assert_equivalent_on(
            DatasetProfile::d1().truncated(120),
            po,
            41 + po as u64,
            WindowSpec::new(20, 12).unwrap(),
        );
    }
}

#[test]
fn equivalence_with_short_duration_thresholds() {
    // Small d surfaces many more satisfied states per window.
    assert_equivalent_on(
        DatasetProfile::v2().truncated(140),
        0,
        3,
        WindowSpec::new(24, 4).unwrap(),
    );
}
