//! End-to-end differential tests: a full [`TemporalVideoQueryEngine`] built
//! on MFS or SSG (with or without pruning, fixed or adaptively selected) must
//! report, frame for frame, exactly the matches of a naive-engine oracle —
//! the same engine wired to the NAIVE maintainer with pruning disabled.

use tvq_common::{DatasetStats, FrameObjects, WindowSpec};
use tvq_core::MaintainerKind;
use tvq_engine::{EngineConfig, FrameResult, TemporalVideoQueryEngine};
use tvq_testkit::classed_feed;

/// Runs a fresh engine over the feed and collects every frame's result.
fn run_engine(
    config: EngineConfig,
    queries: &[&str],
    stats: Option<DatasetStats>,
    feed: &[FrameObjects],
) -> (Vec<FrameResult>, &'static str) {
    let mut builder = TemporalVideoQueryEngine::builder(config);
    for text in queries {
        builder = builder.with_query_text(text).unwrap();
    }
    if let Some(stats) = stats {
        builder = builder.with_feed_stats(stats);
    }
    let mut engine = builder.build().unwrap();
    let results = feed
        .iter()
        .map(|frame| engine.observe(frame).unwrap())
        .collect();
    (results, engine.strategy())
}

/// The oracle: NAIVE maintenance, no pruning.
fn naive_oracle(window: WindowSpec, queries: &[&str], feed: &[FrameObjects]) -> Vec<FrameResult> {
    let config = EngineConfig::new(window)
        .with_maintainer(MaintainerKind::Naive)
        .with_pruning(false);
    run_engine(config, queries, None, feed).0
}

fn assert_engine_matches_oracle(
    window: WindowSpec,
    queries: &[&str],
    feed: &[FrameObjects],
    config: EngineConfig,
    stats: Option<DatasetStats>,
) {
    let expected = naive_oracle(window, queries, feed);
    let (got, strategy) = run_engine(config, queries, stats, feed);
    assert_eq!(expected.len(), got.len());
    for (e, g) in expected.iter().zip(&got) {
        assert_eq!(
            e,
            g,
            "strategy {strategy} disagrees with the naive-engine oracle at frame {} \
             (w={}, d={}, queries {queries:?})",
            e.frame,
            window.window(),
            window.duration(),
        );
    }
}

// person = class 0, car = class 1 in the default registry; classed_feed
// assigns class id % 2, so even object ids are people and odd ids are cars.
const WORKLOADS: [&[&str]; 3] = [
    &["car >= 1 AND person >= 1"],
    &["person >= 2", "car >= 2"],
    &["(car >= 2 OR person >= 2) AND person >= 1"],
];

#[test]
fn engines_agree_with_the_naive_oracle_across_strategies_and_pruning() {
    for seed in 0..4u64 {
        let feed = classed_feed(seed, 40, 6, 0.25, 2);
        let window = WindowSpec::new(5, 3).unwrap();
        for queries in WORKLOADS {
            for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
                for pruning in [false, true] {
                    let config = EngineConfig::new(window)
                        .with_maintainer(kind)
                        .with_pruning(pruning);
                    assert_engine_matches_oracle(window, queries, &feed, config, None);
                }
            }
        }
    }
}

#[test]
fn engines_agree_with_the_naive_oracle_under_heavy_occlusion() {
    for seed in 300..303u64 {
        let feed = classed_feed(seed, 30, 5, 0.5, 2);
        let window = WindowSpec::new(6, 2).unwrap();
        let config = EngineConfig::new(window).with_maintainer(MaintainerKind::Ssg);
        assert_engine_matches_oracle(window, &["car >= 1 AND person >= 1"], &feed, config, None);
    }
}

fn stats(objects_per_frame: f64, frames_per_object: f64) -> DatasetStats {
    DatasetStats {
        frames: 1000,
        objects: 200,
        objects_per_frame,
        occlusions_per_object: 3.0,
        frames_per_object,
    }
}

#[test]
fn adaptive_selection_picks_the_expected_strategy_and_stays_equivalent() {
    let feed = classed_feed(11, 35, 6, 0.3, 2);
    let window = WindowSpec::new(5, 3).unwrap();
    let queries: &[&str] = &["car >= 1 AND person >= 1"];
    // Dense feed statistics → SSG; sparse, long-lived → MFS; the engine must
    // agree with the naive oracle either way.
    for (feed_stats, expected_strategy) in
        [(stats(11.0, 50.0), "SSG_O"), (stats(5.0, 80.0), "MFS_O")]
    {
        let config = EngineConfig::new(window).with_adaptive_maintainer();
        let expected = naive_oracle(window, queries, &feed);
        let (got, strategy) = run_engine(config, queries, Some(feed_stats), &feed);
        assert_eq!(strategy, expected_strategy);
        assert_eq!(
            expected, got,
            "adaptive engine ({strategy}) diverged from the oracle"
        );
    }
}

#[test]
fn adaptive_selection_without_stats_falls_back_to_ssg() {
    let feed = classed_feed(13, 20, 5, 0.2, 2);
    let window = WindowSpec::new(4, 2).unwrap();
    let config = EngineConfig::new(window)
        .with_adaptive_maintainer()
        .with_pruning(false);
    let (got, strategy) = run_engine(config, &["person >= 1"], None, &feed);
    assert_eq!(strategy, "SSG");
    let expected = naive_oracle(window, &["person >= 1"], &feed);
    assert_eq!(expected, got);
}
