//! Differential suite for live catalog swaps (the PR-6 tentpole).
//!
//! The convergence contract under test (see `tvq-engine`'s `catalog`
//! module docs):
//!
//! * **removals** are immediately invisible: from the very next frame the
//!   engine behaves as if the cancelled query had never been registered
//!   (exactly, when the surviving queries mention the same classes; up to
//!   one window turnover of extra already-admitted objects otherwise);
//! * **additions** converge after one full window turnover: once the
//!   window has slid past the swap point, the engine is indistinguishable
//!   from a fresh engine built with the final catalog;
//! * any **interleaving** of adds and removes therefore equals a fresh
//!   engine with the final query set once the window clears the last swap;
//! * a forced add-then-remove round trip is invisible modulo the transient
//!   query's own matches;
//! * in the multi-feed engine, swaps are epoch-aligned on every shard, so
//!   transcripts are identical across worker counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tvq_common::{ClassId, FeedId, FrameId, FrameObjects, ObjectId, QueryId, WindowSpec};
use tvq_engine::{
    EngineConfig, FrameResult, MultiFeedConfig, MultiFeedEngine, TemporalVideoQueryEngine,
};
use tvq_query::{CnfQuery, Condition};

const WINDOW: usize = 6;
const DURATION: usize = 3;

fn geq(id: u32, class: u16, count: u32) -> CnfQuery {
    CnfQuery::conjunction(
        QueryId(id),
        vec![Condition::at_least(ClassId(class), count)],
    )
}

fn engine_with(queries: &[CnfQuery]) -> TemporalVideoQueryEngine {
    let config = EngineConfig::new(WindowSpec::new(WINDOW, DURATION).unwrap());
    let mut builder = TemporalVideoQueryEngine::builder(config).allow_empty_catalog();
    for query in queries {
        builder = builder.with_query(query.clone());
    }
    builder.build().unwrap()
}

/// A churning street scene: a roster of eight tracker ids (class = id % 4),
/// each present with probability 0.7, with occasional track-end events so
/// generations recycle underneath the catalog swaps.
fn gen_frame(fid: u64, rng: &mut StdRng) -> FrameObjects {
    let detections: Vec<(ObjectId, ClassId)> = (1..=8u32)
        .filter(|_| rng.gen_bool(0.7))
        .map(|id| (ObjectId(id), ClassId((id % 4) as u16)))
        .collect();
    let ends = if rng.gen_bool(0.15) {
        vec![ObjectId(rng.gen_range(1..=8u32))]
    } else {
        Vec::new()
    };
    FrameObjects::new(FrameId(fid), detections).with_track_ends(ends)
}

fn gen_frames(count: u64, seed: u64) -> Vec<FrameObjects> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|fid| gen_frame(fid, &mut rng)).collect()
}

/// Order-free canonical form of one frame's matches.
type Canon = Vec<(u32, Vec<u32>, Vec<u64>)>;

fn canon(result: &FrameResult) -> Canon {
    let mut matches: Canon = result
        .matches
        .iter()
        .map(|m| {
            let mut objects: Vec<u32> = m.objects.iter().map(|o| o.0).collect();
            objects.sort_unstable();
            (m.query.0, objects, m.frames.iter().map(|f| f.0).collect())
        })
        .collect();
    matches.sort();
    matches
}

fn canon_without(result: &FrameResult, hidden: QueryId) -> Canon {
    canon(result)
        .into_iter()
        .filter(|(query, _, _)| *query != hidden.0)
        .collect()
}

#[test]
fn cancelling_a_query_is_immediately_equivalent_when_classes_overlap() {
    // All three queries live on classes {0, 1}, so removing one changes
    // neither the relevant-class filter nor (≥-only) the pruner's
    // soundness envelope: transcripts must agree from the very next frame.
    let trio = vec![geq(0, 0, 1), geq(1, 1, 2), geq(2, 1, 1)];
    let survivors = vec![trio[0].clone(), trio[2].clone()];
    let frames = gen_frames(80, 11);
    let swap_at = 40;

    let mut swapped = engine_with(&trio);
    let mut fresh = engine_with(&survivors);
    for (i, frame) in frames.iter().enumerate() {
        if i == swap_at {
            swapped.remove_query(QueryId(1)).unwrap();
        }
        let a = swapped.observe(frame).unwrap();
        let b = fresh.observe(frame).unwrap();
        if i < swap_at {
            assert_eq!(
                canon_without(&a, QueryId(1)),
                canon(&b),
                "pre-swap, the survivors' matches already agree (frame {i})"
            );
        } else {
            assert_eq!(canon(&a), canon(&b), "divergence at frame {i}");
        }
    }
    assert_eq!(swapped.catalog_version(), 1);
}

#[test]
fn adding_a_query_converges_after_one_window_turnover() {
    // q1 lives on a class q0 never mentions, so the swap also widens the
    // relevant-class filter — the slowest-converging case.
    let base = vec![geq(0, 0, 1)];
    let fin = vec![geq(0, 0, 1), geq(1, 1, 2)];
    let frames = gen_frames(80, 23);
    let swap_at = 40usize;

    let mut swapped = engine_with(&base);
    let mut fresh = engine_with(&fin);
    let mut matched_after_convergence = false;
    for (i, frame) in frames.iter().enumerate() {
        if i == swap_at {
            swapped.add_query(fin[1].clone()).unwrap();
        }
        let a = swapped.observe(frame).unwrap();
        let b = fresh.observe(frame).unwrap();
        if i >= swap_at + WINDOW {
            assert_eq!(canon(&a), canon(&b), "divergence at frame {i}");
            matched_after_convergence |= a.matches.iter().any(|m| m.query == QueryId(1));
        }
    }
    assert!(
        matched_after_convergence,
        "the added query must actually match in the compared tail"
    );
}

#[test]
fn random_interleavings_equal_a_fresh_engine_with_the_final_catalog() {
    // Four toggleable queries over classes 0..4; every interleaving of
    // adds/removes must converge to the fresh-engine transcript one window
    // after the last swap. Also pins determinism: re-running the identical
    // schedule reproduces the transcript bit for bit.
    for seed in [1u64, 42, 911] {
        let pool: Vec<CnfQuery> = (0..4u32)
            .map(|i| geq(10 + i, (i % 4) as u16, 1 + (i % 2)))
            .collect();
        let frames = gen_frames(100, seed.wrapping_mul(7919));

        let run = |record: bool| -> (Vec<Canon>, Vec<CnfQuery>, usize) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
            let mut engine = engine_with(&[pool[0].clone()]);
            let mut present = vec![true, false, false, false];
            let mut last_op = 0usize;
            let mut transcript = Vec::new();
            for (i, frame) in frames.iter().enumerate() {
                if i < 80 && rng.gen_bool(0.15) {
                    let pick = rng.gen_range(0..pool.len());
                    if present[pick] {
                        engine.remove_query(pool[pick].id).unwrap();
                    } else {
                        engine.add_query(pool[pick].clone()).unwrap();
                    }
                    present[pick] = !present[pick];
                    last_op = i;
                }
                let result = engine.observe(frame).unwrap();
                if record {
                    transcript.push(canon(&result));
                }
            }
            let survivors: Vec<CnfQuery> = pool
                .iter()
                .zip(&present)
                .filter(|(_, p)| **p)
                .map(|(q, _)| q.clone())
                .collect();
            (transcript, survivors, last_op)
        };

        let (transcript, survivors, last_op) = run(true);
        let (replay, _, _) = run(true);
        assert_eq!(transcript, replay, "seed {seed}: schedule is deterministic");

        let mut fresh = engine_with(&survivors);
        for (i, frame) in frames.iter().enumerate() {
            let expected = canon(&fresh.observe(frame).unwrap());
            if i >= last_op + WINDOW {
                assert_eq!(
                    transcript[i], expected,
                    "seed {seed}: tail divergence at frame {i} (last swap at {last_op})"
                );
            }
        }
    }
}

#[test]
fn forced_swap_round_trip_is_invisible_modulo_the_transient_query() {
    // Add-then-remove a transient query whose classes the base catalog
    // already covers: every other query's transcript must be untouched on
    // EVERY frame, including while the transient was live.
    let base = vec![geq(0, 0, 1), geq(1, 1, 2)];
    let transient = CnfQuery::conjunction(
        QueryId(9),
        vec![
            Condition::at_least(ClassId(0), 2),
            Condition::at_least(ClassId(1), 1),
        ],
    );
    let frames = gen_frames(90, 37);

    let mut swapped = engine_with(&base);
    let mut control = engine_with(&base);
    let mut transient_matched = false;
    for (i, frame) in frames.iter().enumerate() {
        if i == 30 {
            swapped.add_query(transient.clone()).unwrap();
        }
        if i == 60 {
            swapped.remove_query(QueryId(9)).unwrap();
        }
        let a = swapped.observe(frame).unwrap();
        let b = control.observe(frame).unwrap();
        transient_matched |= a.matches.iter().any(|m| m.query == QueryId(9));
        assert_eq!(
            canon_without(&a, QueryId(9)),
            canon(&b),
            "base queries disturbed at frame {i}"
        );
        if !(30..60 + WINDOW).contains(&i) {
            assert!(
                a.matches.iter().all(|m| m.query != QueryId(9)),
                "transient matched outside its registration at frame {i}"
            );
        }
    }
    assert!(
        transient_matched,
        "the transient query must match while live"
    );
    assert_eq!(swapped.catalog_version(), 2);
    assert_eq!(swapped.metrics().catalog_swaps, 2);
    assert_eq!(control.metrics().catalog_swaps, 0);
}

#[test]
fn multi_feed_swaps_are_epoch_aligned_across_worker_counts() {
    // The same feed-tagged stream with the same interleaved catalog ops
    // must produce identical transcripts whether the fleet runs 1, 2, or 3
    // shard workers: WorkerMsg::Catalog rides the same FIFO channels as
    // frames, so every shard applies the swap at the same stream point.
    let run = |workers: usize| -> Vec<(u32, Canon)> {
        let config = MultiFeedConfig::new(EngineConfig::new(
            WindowSpec::new(WINDOW, DURATION).unwrap(),
        ))
        .with_workers(workers);
        let mut engine = MultiFeedEngine::builder(config)
            .with_query(geq(0, 0, 1))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4242);
        let mut transcript = Vec::new();
        let mut step = 0usize;
        for fid in 0..40u64 {
            for feed in 0..3u32 {
                if step == 25 {
                    engine.add_query(geq(7, 1, 2)).unwrap();
                }
                if step == 70 {
                    engine.remove_query(QueryId(0)).unwrap();
                }
                let frame = gen_frame(fid, &mut rng);
                let result = engine.push(FeedId(feed), frame).unwrap();
                transcript.push((feed, canon(&result.result)));
                step += 1;
            }
        }
        let report = engine.report().unwrap();
        assert_eq!(report.catalog_version, 2);
        assert!(report.feeds.iter().all(|f| f.catalog_version == 2));
        transcript
    };

    let solo = run(1);
    assert!(
        solo.iter().any(|(_, canon)| !canon.is_empty()),
        "the scenario must produce matches"
    );
    assert_eq!(solo, run(2), "2 workers diverge from 1");
    assert_eq!(solo, run(3), "3 workers diverge from 1");
}
