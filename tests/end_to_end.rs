//! End-to-end integration: simulated vision stack → MCOS generation → CNF
//! query evaluation, across crates.

use tvq_common::{ClassId, DatasetStats, WindowSpec};
use tvq_core::MaintainerKind;
use tvq_engine::{run_workload, EngineConfig, TemporalVideoQueryEngine};
use tvq_video::{populate_scene, Camera, Motion, Point, Scene, SceneObject, ScenePipeline};

use rand::rngs::StdRng;
use rand::SeedableRng;

const PERSON: ClassId = ClassId(0);
const CAR: ClassId = ClassId(1);

/// A scene with a planted co-occurrence (a car and two people together for
/// 200 frames) plus background clutter.
fn staged_scene() -> Scene {
    let mut scene = Scene::new(1000.0, 800.0, 600);
    // Background clutter is vehicles only, so that only the planted people can
    // satisfy the "two people" part of the query.
    let mut rng = StdRng::seed_from_u64(77);
    populate_scene(
        &mut scene,
        &mut rng,
        25,
        &[(CAR, 1.0), (ClassId(2), 0.4)],
        40..=150,
    );
    scene.add_object(SceneObject {
        track: Default::default(),
        class: CAR,
        enters_at: 200,
        leaves_at: 420,
        spawn: Point::new(400.0, 300.0),
        width: 100.0,
        height: 60.0,
        motion: Motion::Loiter { step: 0.1 },
        depth: 2.0,
    });
    for x in [340.0, 480.0] {
        scene.add_object(SceneObject {
            track: Default::default(),
            class: PERSON,
            enters_at: 210,
            leaves_at: 410,
            spawn: Point::new(x, 330.0),
            width: 25.0,
            height: 70.0,
            motion: Motion::Loiter { step: 0.5 },
            depth: 1.0,
        });
    }
    scene
}

#[test]
fn planted_incident_is_found_by_every_strategy() {
    let relation = ScenePipeline::new(staged_scene(), Camera::fixed(1000.0, 800.0)).run(3);
    assert!(relation.num_frames() == 600);

    for kind in MaintainerKind::PRODUCTION {
        let mut engine = TemporalVideoQueryEngine::builder(
            EngineConfig::new(WindowSpec::new(90, 60).unwrap()).with_maintainer(kind),
        )
        .with_query_text("car >= 1 AND person >= 2")
        .unwrap()
        .build()
        .unwrap();

        let mut matching_frames: Vec<u64> = Vec::new();
        for frame in relation.frames() {
            if engine.observe(frame).unwrap().any() {
                matching_frames.push(frame.fid.raw());
            }
        }
        assert!(
            !matching_frames.is_empty(),
            "{kind:?} found no match for the planted incident"
        );
        // Matches must fall inside (a window-length of) the planted interval.
        assert!(
            matching_frames.iter().all(|&f| (200..=500).contains(&f)),
            "{kind:?} matched outside the planted interval: {matching_frames:?}"
        );
    }
}

#[test]
fn strategies_agree_end_to_end_on_a_profile_feed() {
    let relation = tvq_video::generate(&tvq_video::DatasetProfile::d1().truncated(200), 21);
    let mut registry = relation.registry().clone();
    let queries: Vec<_> = ["car >= 4", "car >= 2 AND person >= 1", "truck >= 1"]
        .iter()
        .enumerate()
        .map(|(i, text)| {
            tvq_query::parse_query(text, tvq_common::QueryId(i as u32), &mut registry).unwrap()
        })
        .collect();
    let window = WindowSpec::new(40, 25).unwrap();

    let reports: Vec<_> = MaintainerKind::PRODUCTION
        .iter()
        .map(|&kind| run_workload(&relation, &queries, window, kind, false).unwrap())
        .collect();
    for pair in reports.windows(2) {
        assert_eq!(pair[0].total_matches, pair[1].total_matches);
        assert_eq!(pair[0].matching_frames, pair[1].matching_frames);
    }
    // MFS and SSG must not manage more states than NAIVE.
    assert!(reports[1].metrics.peak_live_states <= reports[0].metrics.peak_live_states);
    assert!(reports[2].metrics.peak_live_states <= reports[0].metrics.peak_live_states);
}

#[test]
fn csv_round_trip_preserves_query_results() {
    let relation = tvq_video::generate(&tvq_video::DatasetProfile::m1().truncated(150), 5);
    let csv = tvq_common::io::relation_to_csv_string(&relation).unwrap();
    let reloaded =
        tvq_common::io::read_relation_csv(csv.as_bytes(), relation.registry().clone()).unwrap();
    // Trailing empty frames carry no CSV records; compare on the common prefix.
    let relation = relation.truncated(reloaded.num_frames());
    assert_eq!(DatasetStats::of(&relation), DatasetStats::of(&reloaded));

    let mut registry = relation.registry().clone();
    let query =
        tvq_query::parse_query("person >= 3", tvq_common::QueryId(0), &mut registry).unwrap();
    let window = WindowSpec::new(30, 20).unwrap();
    let a = run_workload(
        &relation,
        std::slice::from_ref(&query),
        window,
        MaintainerKind::Ssg,
        false,
    )
    .unwrap();
    let b = run_workload(&reloaded, &[query], window, MaintainerKind::Ssg, false).unwrap();
    assert_eq!(a.total_matches, b.total_matches);
    assert_eq!(a.matching_frames, b.matching_frames);
}
