//! Integration of MCOS generation with CNF query evaluation: the Section 5
//! pipeline, including the Section 5.3 pruning strategy.

use std::sync::Arc;

use tvq_common::{ClassId, QueryId, WindowSpec};
use tvq_core::MaintainerKind;
use tvq_query::{
    evaluate_result_set, generate_workload, CnfEvaluator, CnfQuery, Condition, GeqOnlyPruner,
    WorkloadConfig,
};
use tvq_video::{generate, DatasetProfile};

#[test]
fn pruned_maintainers_report_the_same_query_matches() {
    let relation = generate(&DatasetProfile::d2().truncated(150), 17);
    let classes = Arc::new(relation.object_classes().clone());
    let queries = vec![
        CnfQuery::conjunction(QueryId(0), vec![Condition::at_least(ClassId(1), 5)]),
        CnfQuery::conjunction(
            QueryId(1),
            vec![
                Condition::at_least(ClassId(1), 3),
                Condition::at_least(ClassId(2), 1),
            ],
        ),
    ];
    let evaluator = Arc::new(CnfEvaluator::new(queries));
    let pruner = GeqOnlyPruner::shared(Arc::clone(&evaluator), Arc::clone(&classes)).unwrap();
    let spec = WindowSpec::new(30, 20).unwrap();

    for kind in [MaintainerKind::Mfs, MaintainerKind::Ssg] {
        let mut plain = kind.build(spec);
        let mut pruned = kind.build_with_pruner(spec, Arc::clone(&pruner));
        let mut plain_matches = 0usize;
        let mut pruned_matches = 0usize;
        for frame in relation.frames() {
            plain.advance(frame.fid, &frame.objects).unwrap();
            pruned.advance(frame.fid, &frame.objects).unwrap();
            plain_matches += evaluate_result_set(&evaluator, plain.results(), &classes).len();
            pruned_matches += evaluate_result_set(&evaluator, pruned.results(), &classes).len();
        }
        assert_eq!(
            plain_matches, pruned_matches,
            "{kind:?}: pruning changed the query answers"
        );
        assert!(
            pruned.metrics().states_terminated > 0,
            "{kind:?}: the pruner never fired"
        );
        assert!(
            pruned.metrics().peak_live_states <= plain.metrics().peak_live_states,
            "{kind:?}: pruning did not reduce state count"
        );
    }
}

#[test]
fn selective_workloads_prune_more_states() {
    // Larger n_min (more selective queries) must terminate at least as many
    // states — the mechanism behind Figure 9's speedups.
    let relation = generate(&DatasetProfile::m2().truncated(150), 23);
    let classes = Arc::new(relation.object_classes().clone());
    let spec = WindowSpec::new(30, 20).unwrap();
    let mut previous_terminated = 0u64;
    for n_min in [1u32, 5, 9] {
        let workload = generate_workload(&WorkloadConfig::figure_9(n_min), 7);
        let evaluator = Arc::new(CnfEvaluator::new(workload));
        let pruner = GeqOnlyPruner::shared(Arc::clone(&evaluator), Arc::clone(&classes)).unwrap();
        let mut maintainer = MaintainerKind::Ssg.build_with_pruner(spec, pruner);
        for frame in relation.frames() {
            maintainer.advance(frame.fid, &frame.objects).unwrap();
        }
        let terminated = maintainer.metrics().states_terminated;
        assert!(
            terminated >= previous_terminated,
            "n_min={n_min}: termination count decreased ({terminated} < {previous_terminated})"
        );
        previous_terminated = terminated;
    }
}

#[test]
fn figure_8_workload_sizes_barely_change_total_cost_drivers() {
    // The paper observes that query evaluation cost is negligible next to
    // state maintenance: the number of states maintained must not depend on
    // the number of registered queries (only on the feed and window).
    let relation = generate(&DatasetProfile::v1().truncated(200), 31);
    let spec = WindowSpec::new(30, 24).unwrap();
    let mut created = Vec::new();
    for num_queries in [10usize, 30, 50] {
        let workload = generate_workload(&WorkloadConfig::figure_8(num_queries), 11);
        let evaluator = CnfEvaluator::new(workload);
        let mut maintainer = MaintainerKind::Mfs.build(spec);
        let classes = relation.object_classes().clone();
        let mut matches = 0usize;
        for frame in relation.frames() {
            maintainer.advance(frame.fid, &frame.objects).unwrap();
            matches += evaluate_result_set(&evaluator, maintainer.results(), &classes).len();
        }
        let _ = matches;
        created.push(maintainer.metrics().states_created);
    }
    assert_eq!(created[0], created[1]);
    assert_eq!(created[1], created[2]);
}
