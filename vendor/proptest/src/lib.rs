//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the slice of proptest this workspace uses:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header) expanding
//!   each `fn name(arg in strategy, ...) { body }` into a `#[test]` that runs
//!   the body over many generated inputs;
//! * strategies: integer/float ranges, tuples of strategies,
//!   [`collection::vec`], [`collection::btree_map`] and [`arbitrary::any`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`;
//! * **regression persistence**: when a case fails, its seed is appended to
//!   `proptest-regressions/<source-file-stem>.txt` next to the crate's
//!   `Cargo.toml`, and seeds found there are replayed *first* on every run,
//!   so a once-seen failure stays reproducible until fixed.
//!
//! Generation is driven by the vendored deterministic [`rand`] crate: case
//! seeds are derived from the test name and case index, so runs are fully
//! deterministic — there is no shrinking, but any failure report includes the
//! seed and is replayable as-is.

#![forbid(unsafe_code)]

pub use ::rand as __rand;

/// Runner configuration.
pub mod test_runner {
    /// The subset of proptest's `ProptestConfig` this workspace uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::SampleRange;
    use std::ops::{Range, RangeInclusive};

    /// A source of generated values. Unlike real proptest there is no shrink
    /// tree; a strategy is just a deterministic sampler.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.clone().sample_single(rng)
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.clone().sample_single(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The strategy generating arbitrary values of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Accepted size arguments for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi_exclusive {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi_exclusive)
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(
                r.end > r.start,
                "empty collection size range: {}..{}",
                r.start,
                r.end
            );
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` — see [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` — see [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
            let len = self.size.sample(rng);
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }

    /// Generates maps with up to `size` entries (duplicate keys collapse, as
    /// in real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }
}

/// Test-case driver with regression persistence. Used by the [`proptest!`]
/// macro expansion; not part of the public proptest API surface.
pub mod runner {
    use super::test_runner::ProptestConfig;
    use std::fs;
    use std::panic::{self, AssertUnwindSafe};
    use std::path::{Path, PathBuf};

    /// Where failing seeds for `source_file` are persisted: proptest's
    /// convention of a `proptest-regressions/` directory next to the crate
    /// manifest, one file per source file stem.
    pub fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
        let stem = Path::new(source_file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown");
        Path::new(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{stem}.txt"))
    }

    fn stored_seeds(path: &Path, test_name: &str) -> Vec<u64> {
        let Ok(contents) = fs::read_to_string(path) else {
            return Vec::new();
        };
        contents
            .lines()
            .filter_map(|line| {
                let line = line.trim();
                let mut parts = line.split_whitespace();
                // Format: `cc <test_name> <seed>` (comments start with '#').
                match (parts.next(), parts.next(), parts.next()) {
                    (Some("cc"), Some(name), Some(seed)) if name == test_name => seed.parse().ok(),
                    _ => None,
                }
            })
            .collect()
    }

    fn persist_seed(path: &Path, test_name: &str, seed: u64) {
        use std::io::Write as _;

        if stored_seeds(path, test_name).contains(&seed) {
            return;
        }
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        // Append-only (O_APPEND) so concurrently failing tests in the same
        // binary — which share this file — cannot clobber each other's seeds
        // the way a read-modify-write would.
        let Ok(mut file) = fs::OpenOptions::new().create(true).append(true).open(path) else {
            return;
        };
        let mut entry = String::new();
        if file.metadata().map(|m| m.len() == 0).unwrap_or(false) {
            entry.push_str(
                "# Seeds for failure cases proptest has generated in the past.\n\
                 # It is recommended to check this file in to source control so that\n\
                 # everyone who runs the test benefits from these saved cases.\n",
            );
        }
        entry.push_str(&format!("cc {test_name} {seed}\n"));
        let _ = file.write_all(entry.as_bytes());
    }

    /// Deterministic per-case seed: FNV-1a over the test name, mixed with the
    /// case index through a SplitMix64 finaliser.
    pub fn derive_seed(test_name: &str, index: u32) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut z = hash ^ ((index as u64) << 1).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Runs `case` over the persisted regression seeds (first) and then
    /// `config.cases` freshly derived seeds. On failure the seed is persisted
    /// and the test panics with a replay hint.
    pub fn run_cases(
        config: &ProptestConfig,
        manifest_dir: &str,
        source_file: &str,
        test_name: &str,
        mut case: impl FnMut(u64),
    ) {
        let path = regression_path(manifest_dir, source_file);
        let replayed = stored_seeds(&path, test_name);
        let fresh = (0..config.cases).map(|i| derive_seed(test_name, i));
        for (is_replay, seed) in replayed
            .iter()
            .copied()
            .map(|s| (true, s))
            .chain(fresh.map(|s| (false, s)))
        {
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| case(seed)));
            if let Err(payload) = outcome {
                persist_seed(&path, test_name, seed);
                let message = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("test case panicked");
                panic!(
                    "proptest case failed for `{test_name}` (seed {seed}{}): {message}\n\
                     seed persisted to {}",
                    if is_replay {
                        ", replayed regression"
                    } else {
                        ""
                    },
                    path.display(),
                );
            }
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::runner::run_cases(
                &config,
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__seed| {
                    use $crate::strategy::Strategy as _;
                    let mut __rng =
                        <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                            __seed,
                        );
                    $(let $arg = ($strat).generate(&mut __rng);)+
                    $body
                },
            );
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vec_strategy_respects_size_and_element_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let strat = crate::collection::vec(0u32..64, 0..32);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 32);
            assert!(v.iter().all(|&x| x < 64));
        }
    }

    #[test]
    fn btree_map_strategy_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let strat = crate::collection::btree_map(0u64..40, any::<bool>(), 0..20);
        for _ in 0..100 {
            let m = strat.generate(&mut rng);
            assert!(m.len() < 20);
            assert!(m.keys().all(|&k| k < 40));
        }
    }

    #[test]
    fn tuple_strategies_generate_componentwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let strat = (0u64..60, any::<bool>(), 0u8..3);
        for _ in 0..200 {
            let (a, _b, c) = strat.generate(&mut rng);
            assert!(a < 60);
            assert!(c < 3);
        }
    }

    #[test]
    fn derived_seeds_are_deterministic_and_name_dependent() {
        assert_eq!(
            crate::runner::derive_seed("foo", 3),
            crate::runner::derive_seed("foo", 3)
        );
        assert_ne!(
            crate::runner::derive_seed("foo", 3),
            crate::runner::derive_seed("bar", 3)
        );
        assert_ne!(
            crate::runner::derive_seed("foo", 3),
            crate::runner::derive_seed("foo", 4)
        );
    }

    #[test]
    #[should_panic(expected = "empty collection size range")]
    #[allow(clippy::reversed_empty_ranges)]
    fn empty_collection_size_ranges_are_rejected() {
        let _ = crate::collection::vec(0u32..4, 5..3);
    }

    #[test]
    fn failing_cases_persist_their_seed_and_are_replayed_first() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = dir.to_str().unwrap().to_owned();
        let config = ProptestConfig::with_cases(5);

        // A failing run must persist the first failing seed.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::runner::run_cases(
                &config,
                &manifest,
                "tests/sample.rs",
                "always_fails",
                |_| panic!("boom"),
            );
        }));
        assert!(outcome.is_err());
        let path = crate::runner::regression_path(&manifest, "tests/sample.rs");
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("cc always_fails"), "{contents}");

        // A later (now passing) run replays the stored seed before the fresh
        // cases; seeds stored for other tests are ignored.
        let mut seeds = Vec::new();
        crate::runner::run_cases(
            &ProptestConfig::with_cases(1),
            &manifest,
            "tests/sample.rs",
            "always_fails",
            |seed| seeds.push(seed),
        );
        assert_eq!(seeds.len(), 2, "one replayed + one fresh seed");
        assert_eq!(seeds[0], crate::runner::derive_seed("always_fails", 0));
        let mut other = Vec::new();
        crate::runner::run_cases(
            &ProptestConfig::with_cases(1),
            &manifest,
            "tests/sample.rs",
            "different_test",
            |seed| other.push(seed),
        );
        assert_eq!(other.len(), 1, "no replays for a test without regressions");
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: generated values respect their strategies.
        #[test]
        fn macro_binds_generated_values(x in 1usize..10, v in crate::collection::vec(0u32..5, 0..6)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }
}
