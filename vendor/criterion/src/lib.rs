//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the benchmark-facing API surface the workspace's `benches/*.rs`
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`]
//! (and `bench_function`), [`BenchmarkId`], the group tuning knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`) and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement follows criterion's CLI convention: `cargo bench` passes
//! `--bench` to the binary, which triggers real timed runs (warm-up, then up
//! to `sample_size` samples within `measurement_time`, reporting mean/min/max
//! wall-clock time). Without `--bench` (e.g. `cargo test --benches`) every
//! benchmark body runs exactly once as a smoke test. There are no HTML
//! reports or statistical regressions — numbers go to stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement types (wall clock only).
pub mod measurement {
    /// Wall-clock time measurement — the criterion default.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_owned(),
            parameter: String::new(),
        }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    config: &'a GroupConfig,
    /// Filled in by `iter`: (samples, total elapsed).
    result: Option<(Vec<Duration>, Duration)>,
}

impl Bencher<'_> {
    /// Times `routine`, running one call per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
                self.result = Some((Vec::new(), Duration::ZERO));
            }
            Mode::Bench => {
                let warm_up_end = Instant::now() + self.config.warm_up_time;
                while Instant::now() < warm_up_end {
                    black_box(routine());
                }
                let mut samples = Vec::with_capacity(self.config.sample_size);
                let started = Instant::now();
                for _ in 0..self.config.sample_size {
                    let sample_start = Instant::now();
                    black_box(routine());
                    samples.push(sample_start.elapsed());
                    if started.elapsed() > self.config.measurement_time && samples.len() >= 2 {
                        break;
                    }
                }
                self.result = Some((samples, started.elapsed()));
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench` (the binary received `--bench`): timed runs.
    Bench,
    /// `cargo test` / direct invocation: run each body once.
    Test,
}

#[derive(Debug, Clone)]
struct GroupConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    criterion: &'a mut Criterion,
    config: GroupConfig,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Soft cap on the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        self.run(id, |bencher| routine(bencher, input));
        self
    }

    /// Benchmarks a routine without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        self.run(id, |bencher| routine(bencher));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut routine: impl FnMut(&mut Bencher<'_>)) {
        let mode = self.criterion.mode;
        let mut bencher = Bencher {
            mode,
            config: &self.config,
            result: None,
        };
        routine(&mut bencher);
        let label = format!("{}/{}", self.name, id.render());
        match (mode, bencher.result) {
            (Mode::Test, _) => println!("test {label} ... ok"),
            (Mode::Bench, Some((samples, _))) if !samples.is_empty() => {
                let total: Duration = samples.iter().sum();
                let mean = total / samples.len() as u32;
                let min = samples.iter().min().copied().unwrap_or_default();
                let max = samples.iter().max().copied().unwrap_or_default();
                println!(
                    "{label}: mean {mean:?} (min {min:?} .. max {max:?}, {} samples)",
                    samples.len()
                );
            }
            (Mode::Bench, _) => println!("{label}: no samples collected"),
        }
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` to harness=false bench binaries;
        // cargo test does not — mirroring criterion's own detection.
        let bench = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if bench { Mode::Bench } else { Mode::Test },
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            config: GroupConfig::default(),
            _measurement: std::marker::PhantomData,
        }
    }

    /// Runs `routine` as a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = name.to_owned();
        self.benchmark_group(name.clone())
            .bench_function(BenchmarkId::from(name.as_str()), routine);
        self
    }

    /// Final criterion hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_mode() -> Criterion {
        Criterion { mode: Mode::Test }
    }

    fn bench_mode() -> Criterion {
        Criterion { mode: Mode::Bench }
    }

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut criterion = test_mode();
        let mut group = criterion.benchmark_group("g");
        let mut calls = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &7usize, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_collects_multiple_samples() {
        let mut criterion = bench_mode();
        let mut group = criterion.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0usize;
        group.bench_function(BenchmarkId::new("f", "x"), |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // Warm-up plus at least two samples.
        assert!(calls >= 3, "calls = {calls}");
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 42).render(), "f/42");
        assert_eq!(
            BenchmarkId::new(format!("w{}", 8), "SSG").render(),
            "w8/SSG"
        );
    }
}
