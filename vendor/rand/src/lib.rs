//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) slice of the `rand` 0.8 API the workspace actually
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! The generator is a SplitMix64 — not cryptographic, but statistically solid
//! for simulation and test workloads, fully deterministic for a given seed,
//! and stable across platforms (which the differential tests rely on).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a `f64` uniformly distributed in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Constructing a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (the stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let value = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                // Rounding (notably the f64 -> f32 cast) can land exactly on
                // the excluded upper bound; honour the half-open contract.
                if value < self.end {
                    value
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2usize..=8);
            assert!((2..=8).contains(&y));
            let z = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&z));
            let n = rng.gen_range(-6i64..=6);
            assert!((-6..=6).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_every_value_of_a_small_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn float_ranges_never_return_the_exclusive_bound() {
        struct NearOne;
        impl RngCore for NearOne {
            fn next_u64(&mut self) -> u64 {
                u64::MAX // next_f64() -> the largest double below 1.0
            }
        }
        let mut rng = NearOne;
        // The f64 -> f32 cast would round this up to exactly 1.0 without the
        // upper-bound guard.
        let x: f32 = rng.gen_range(0.0f32..1.0f32);
        assert!(x < 1.0, "got {x}");
        let y: f64 = rng.gen_range(3.0f64..4.0f64);
        assert!(y < 4.0, "got {y}");
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
